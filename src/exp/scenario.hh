/**
 * @file
 * Scenario: a pure-data description of one simulation point.
 *
 * The experiment engine (src/exp/) separates *what* to simulate from
 * *how* it executes. A Scenario names a topology, a router and link
 * configuration, a routing mode, a traffic specification, an offered
 * load and the RNG seeds — everything needed to reconstruct the run
 * bit-for-bit — without holding any live simulation objects. Plans
 * built from Scenarios can therefore be executed serially or on a
 * thread pool with identical results (see ExperimentRunner).
 */

#ifndef SNOC_EXP_SCENARIO_HH
#define SNOC_EXP_SCENARIO_HH

#include <cstdint>
#include <string>

#include "sim/network.hh"
#include "sim/routing.hh"
#include "sim/simulation.hh"
#include "traffic/patterns.hh"
#include "workload/spec.hh"

namespace snoc {

/**
 * What traffic to offer: a synthetic pattern, a trace workload, a
 * closed-loop request/reply generator, or a collective schedule.
 */
struct TrafficSpec
{
    enum class Kind
    {
        Synthetic,  //!< Bernoulli source driving a PatternKind
        Workload,   //!< PARSEC/SPLASH-like trace replay by name
        ClosedLoop, //!< MSHR-window request/reply chains
        Collective, //!< broadcast / barrier / all-to-all rounds
    };

    Kind kind = Kind::Synthetic;

    // Synthetic traffic; `pattern` also draws closed-loop request
    // destinations (and dirty-owner forwards).
    PatternKind pattern = PatternKind::Random;
    int packetSizeFlits = 6; //!< Section 5.1's synthetic packet size

    // Trace workloads (see parsecSplashWorkloads()).
    std::string workload;       //!< profile name, e.g. "radix"
    Cycle workloadCycles = 5000; //!< trace duration

    // Closed-loop / collective specs (see src/workload/spec.hh).
    ClosedLoopSpec closedLoop;
    CollectiveSpec collective;

    static TrafficSpec
    synthetic(PatternKind p)
    {
        TrafficSpec t;
        t.pattern = p;
        return t;
    }

    static TrafficSpec
    trace(std::string name, Cycle cycles)
    {
        TrafficSpec t;
        t.kind = Kind::Workload;
        t.workload = std::move(name);
        t.workloadCycles = cycles;
        return t;
    }

    static TrafficSpec
    closedLoopOn(PatternKind p, const ClosedLoopSpec &spec = {})
    {
        TrafficSpec t;
        t.kind = Kind::ClosedLoop;
        t.pattern = p;
        t.closedLoop = spec;
        return t;
    }

    static TrafficSpec
    collectiveOf(const CollectiveSpec &spec)
    {
        TrafficSpec t;
        t.kind = Kind::Collective;
        t.collective = spec;
        return t;
    }

    bool operator==(const TrafficSpec &) const = default;
};

/**
 * Energy evaluation spec: when enabled, the ExperimentRunner feeds
 * each point's measurement-window counters through the analytical
 * PowerModel (power/power_model.hh) and attaches power / EDP /
 * throughput-per-watt to the result. Purely an evaluation axis: it
 * never changes the simulation itself, so enabling it keeps every
 * SimResult bit-identical.
 */
struct EnergySpec
{
    bool enabled = false;
    std::string tech = "45nm"; //!< corner, see techCornerNames()
    int flitBits = 128;        //!< link width (Section 5.1)

    static EnergySpec
    corner(std::string techName, int bits = 128)
    {
        EnergySpec e;
        e.enabled = true;
        e.tech = std::move(techName);
        e.flitBits = bits;
        return e;
    }

    bool operator==(const EnergySpec &) const = default;
};

/** One fully-specified simulation point, as data. */
struct Scenario
{
    std::string label;      //!< optional; describe() derives one
    std::string topology;   //!< Table-4 id, resolved via TopologyCache
    std::string routerConfig = "EB-Var";
    LinkConfig link;        //!< hopsPerCycle = 1 disables SMART
    RoutingMode routing = RoutingMode::Minimal;
    TrafficSpec traffic;
    double load = 0.1;      //!< offered flits/node/cycle (synthetic)
    std::uint64_t seed = 42;       //!< traffic source seed
    std::uint64_t routingSeed = 7; //!< adaptive-routing tie-break seed
    SimConfig sim;          //!< warmup / measurement windows
    FaultPlan faults;       //!< timed link/router failures; an
                            //!< inactive (default) plan keeps the run
                            //!< bit-identical to the fault-free path
    EnergySpec energy;      //!< post-run power/EDP evaluation; never
                            //!< affects the simulation itself

    bool operator==(const Scenario &) const = default;

    /**
     * label, or a derived
     * "topo/router/routing/traffic@load[+faults][+tech]" when the
     * label is empty. Every axis that changes the result row is part
     * of the derived label (routing mode, fault-plan presence, the
     * energy corner), so distinct points never collide — e.g. the
     * same point evaluated at two technology corners; this is the
     * single labeling path used by the report renderer, the sinks
     * and the CLI.
     */
    std::string describe() const;
};

/** Convenience builder for the common synthetic case. */
Scenario makeSyntheticScenario(const std::string &topology,
                               const std::string &routerConfig,
                               PatternKind pattern, double load,
                               int hopsPerCycle = 1,
                               RoutingMode routing =
                                   RoutingMode::Minimal,
                               const SimConfig &sim = {});

/**
 * Convenience builder for trace-workload scenarios. The default
 * seed matches runWorkload()'s legacy default (99) so engine runs
 * reproduce direct runWorkload() calls bit for bit.
 */
Scenario makeTraceScenario(const std::string &topology,
                           const std::string &workload, Cycle cycles,
                           std::uint64_t seed = 99);

/** Convenience builder for closed-loop request/reply scenarios. */
Scenario makeClosedLoopScenario(const std::string &topology,
                                const std::string &routerConfig,
                                PatternKind pattern,
                                const ClosedLoopSpec &spec = {},
                                RoutingMode routing =
                                    RoutingMode::Minimal,
                                const SimConfig &sim = {});

/** Convenience builder for collective-schedule scenarios. */
Scenario makeCollectiveScenario(const std::string &topology,
                                const std::string &routerConfig,
                                const CollectiveSpec &spec,
                                RoutingMode routing =
                                    RoutingMode::Minimal,
                                const SimConfig &sim = {});

/**
 * Interpret a sweep/saturation x-value for this scenario. Open-loop
 * scenarios sweep the offered load; closed-loop scenarios sweep the
 * axis named by closedLoop.sweepAxis (issue probability, clamped to
 * [0, 1], or window depth, rounded to an integer >= 1). The single
 * shared mapping keeps runJob's evaluation, the recorded sweep rows
 * and the batched fast path in exact agreement.
 */
void applySweepValue(Scenario &s, double x);

} // namespace snoc

#endif // SNOC_EXP_SCENARIO_HH
