/**
 * @file
 * Plan-file I/O shared by the `snoc` CLI and the ported bench
 * binaries, so both execute the *same* bytes through the *same* code
 * path (the byte-identity guarantee between `snoc run plans/x.json`
 * and the corresponding bench binary rests on this).
 *
 * Path resolution makes committed plan files reachable from any
 * working directory: a path is tried as given, then under
 * $SNOC_PLAN_DIR, then under the source tree the build was
 * configured from.
 *
 * applyFastMode() is the data-driven successor of the bench
 * harness's SNOC_BENCH_FAST handling: instead of each bench
 * hand-shrinking its grids, the transform rescales any loaded plan
 * (simulation windows, fault-event cycles, sweep load grids) by the
 * same rules.
 */

#ifndef SNOC_EXP_PLAN_IO_HH
#define SNOC_EXP_PLAN_IO_HH

#include <string>

#include "exp/experiment_plan.hh"

namespace snoc {

/** Read a whole file. @throws FatalError when unreadable. */
std::string readTextFile(const std::string &path);

/**
 * Resolve a plan path: as given, then $SNOC_PLAN_DIR/<path>, then
 * <source dir>/<path> (the tree the build was configured from).
 * @throws FatalError listing every tried location when not found
 */
std::string resolvePlanPath(const std::string &path);

/** Resolve, read and parse a plan file. */
ExperimentPlan loadPlanFile(const std::string &path);

/** Resolve, read and parse a single-scenario file. */
Scenario loadScenarioFile(const std::string &path);

/**
 * Shrink a plan for smoke runs (SNOC_BENCH_FAST): simulation windows
 * and fault cycles divide by 4, and sweep grids with more than two
 * loads thin to {first, middle} — the same shape the bench harness's
 * fast mode always used.
 */
void applyFastMode(ExperimentPlan &plan);

} // namespace snoc

#endif // SNOC_EXP_PLAN_IO_HH
