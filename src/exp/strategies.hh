/**
 * @file
 * Load-sweep and saturation-search strategies, factored out of the
 * simulation driver so every layer (sim helpers, experiment engine,
 * benches) shares one implementation. The strategies are expressed
 * against a PointEvaluator — "give me the SimResult at this load" —
 * so they are agnostic to how the network is built (fresh factories
 * in the legacy sim API, TopologyCache-backed Scenarios in the
 * engine).
 */

#ifndef SNOC_EXP_STRATEGIES_HH
#define SNOC_EXP_STRATEGIES_HH

#include <functional>
#include <vector>

#include "sim/simulation.hh"

namespace snoc {

/**
 * Evaluate one point of the swept axis; must be deterministic in
 * the x value. For open-loop scenarios x is the offered load in
 * flits/node/cycle; for closed-loop scenarios the engine maps x
 * through applySweepValue (exp/scenario.hh) onto the spec's sweep
 * axis — issue probability by default. Issue probability is the
 * supported *saturation* axis: stalling grows monotonically with it,
 * so the stable/unstable boundary brackets exactly like an open-loop
 * load. Window depth is a sweep-only axis — deeper windows stall
 * *less*, which would invert the bisection bracket.
 */
using PointEvaluator = std::function<SimResult(double load)>;

/**
 * Run `loads` in order through `eval`.
 *
 * @param stopAtSaturation cut the sweep once a point is unstable or
 *        its latency exceeds saturationFactor x the first delivered
 *        point's latency (the paper's sweep methodology).
 */
std::vector<LoadPoint> runLoadSweep(const PointEvaluator &eval,
                                    const std::vector<double> &loads,
                                    bool stopAtSaturation = true,
                                    double saturationFactor = 6.0);

/** Bisection saturation-search parameters. */
struct SaturationSpec
{
    double loLoad = 0.05;  //!< assumed-stable starting load
    double hiLoad = 1.0;   //!< upper bound (1 flit/node/cycle)
    double tolerance = 0.02; //!< stop when hi - lo <= tolerance
    int maxProbes = 12;    //!< hard cap on evaluations

    bool operator==(const SaturationSpec &) const = default;
};

/** Outcome of a saturation search. */
struct SaturationResult
{
    double saturationLoad = 0.0; //!< highest load observed stable
    double bestThroughput = 0.0; //!< max delivered flits/node/cycle
    std::vector<LoadPoint> probes; //!< every evaluated point, in order
};

/**
 * Find the saturation point by bisecting the stable/unstable
 * boundary: probe hiLoad (stable => done), then loLoad, then narrow
 * the bracket until it is tighter than `tolerance`. Replaces the
 * legacy x1.7 geometric ramp, which overshot the boundary by up to
 * 70% of the load axis.
 */
SaturationResult findSaturation(const PointEvaluator &eval,
                                const SaturationSpec &spec = {});

} // namespace snoc

#endif // SNOC_EXP_STRATEGIES_HH
