#include "exp/resilience.hh"

#include <sstream>

#include "common/log.hh"

namespace snoc {

ExperimentPlan
makeResiliencePlan(const Scenario &base, const ResilienceSpec &spec)
{
    SNOC_ASSERT(!spec.failureFractions.empty() && !spec.loads.empty(),
                "resilience sweep needs fractions and loads");
    Cycle failAt =
        spec.failAt > 0 ? spec.failAt : base.sim.warmupCycles;

    ExperimentPlan plan;
    plan.name = base.describe() + " resilience";
    for (std::size_t fi = 0; fi < spec.failureFractions.size();
         ++fi) {
        double frac = spec.failureFractions[fi];
        for (double load : spec.loads) {
            Scenario s = base;
            s.load = load;
            s.faults = FaultPlan::randomLinkFailures(
                frac, failAt,
                spec.faultSeed + static_cast<std::uint64_t>(fi));
            std::ostringstream label;
            label << base.describe() << "/fail" << 100.0 * frac
                  << "%@" << load;
            s.label = label.str();
            plan.add(std::move(s));
        }
    }
    return plan;
}

} // namespace snoc
