#include "exp/result_store.hh"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>
#include <vector>

#include "common/env.hh"
#include "common/hash.hh"
#include "common/log.hh"
#include "common/version.hh"
#include "exp/plan_io.hh"
#include "exp/serialize.hh"

namespace snoc {

namespace fs = std::filesystem;

namespace {

// Bumping this invalidates every existing store (and journal) when
// the entry schema itself changes, independently of code versions.
constexpr const char *kStoreSchema = "snoc-store-v1";

bool
looksLikeEntry(const fs::path &p)
{
    return p.extension() == ".json";
}

} // namespace

std::string
resultStoreStamp()
{
    return std::string(kStoreSchema) + ":" + gitDescribe();
}

std::string
resultKey(const Scenario &scenario)
{
    return sha256Hex(serializeScenario(scenario) + resultStoreStamp());
}

ResultStore::ResultStore(std::string root, std::string stamp)
    : root_(std::move(root)),
      stamp_(stamp.empty() ? resultStoreStamp() : std::move(stamp))
{
    if (root_.empty())
        fatal("result store root must not be empty");
    std::error_code ec;
    fs::create_directories(fs::path(root_) / "objects", ec);
    if (ec)
        fatal("cannot create result store at '", root_,
              "': ", ec.message());
}

std::string
ResultStore::resolveRoot()
{
    return envString(kEnvResultStore, "");
}

std::string
ResultStore::entryPath(const std::string &key) const
{
    return (fs::path(root_) / "objects" / key.substr(0, 2) /
            (key + ".json"))
        .string();
}

std::optional<SimResult>
ResultStore::lookup(const std::string &key)
{
    std::string path = entryPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    try {
        JsonValue doc = JsonValue::parse(text, path);
        const JsonValue *stamp = doc.find("stamp");
        const JsonValue *sim = doc.find("sim");
        if (!stamp || !sim || stamp->asString("$.stamp") != stamp_) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        SimResult r = simResultFromJson(*sim, "$.sim");
        hits_.fetch_add(1, std::memory_order_relaxed);
        return r;
    } catch (const FatalError &) {
        // A corrupt entry (torn write from a crashed process, disk
        // damage) is a cache miss, never a campaign failure.
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
}

void
ResultStore::put(const std::string &key, const Scenario &scenario,
                 const SimResult &sim)
{
    JsonValue doc = JsonValue::object();
    doc.set("key", JsonValue::string(key));
    doc.set("stamp", JsonValue::string(stamp_));
    doc.set("scenario", toJson(scenario));
    doc.set("sim", toJson(sim));
    std::string text = doc.dump(2) + "\n";

    std::string path = entryPath(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        fatal("cannot create result store directory for '", path,
              "': ", ec.message());

    // One temp name per handle at a time; the final rename is atomic,
    // so concurrent stores (or a crash mid-put) can never expose a
    // partially written entry under the content-addressed name.
    std::lock_guard<std::mutex> lock(writeMutex_);
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot write result store entry '", tmp, "'");
        out << text;
        out.flush();
        if (!out)
            fatal("short write to result store entry '", tmp, "'");
    }
    fs::rename(tmp, path, ec);
    if (ec)
        fatal("cannot commit result store entry '", path,
              "': ", ec.message());
    puts_.fetch_add(1, std::memory_order_relaxed);
}

ResultStore::Stats
ResultStore::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.puts = puts_.load(std::memory_order_relaxed);
    return s;
}

ResultStore::Usage
ResultStore::usage() const
{
    Usage u;
    std::error_code ec;
    fs::path objects = fs::path(root_) / "objects";
    for (fs::recursive_directory_iterator
             it(objects, fs::directory_options::skip_permission_denied,
                ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec) || !looksLikeEntry(it->path()))
            continue;
        u.bytes += it->file_size(ec);
        try {
            JsonValue doc = JsonValue::parse(
                readTextFile(it->path().string()), it->path().string());
            const JsonValue *stamp = doc.find("stamp");
            if (stamp && stamp->isString() &&
                stamp->asString("$.stamp") == stamp_)
                ++u.entries;
            else
                ++u.stale;
        } catch (const FatalError &) {
            ++u.corrupt;
        }
    }
    return u;
}

std::uint64_t
ResultStore::clear()
{
    std::uint64_t removed = 0;
    std::error_code ec;
    fs::path objects = fs::path(root_) / "objects";
    std::vector<fs::path> victims;
    for (fs::recursive_directory_iterator
             it(objects, fs::directory_options::skip_permission_denied,
                ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && looksLikeEntry(it->path()))
            victims.push_back(it->path());
    }
    for (const fs::path &p : victims)
        if (fs::remove(p, ec) && !ec)
            ++removed;
    return removed;
}

std::uint64_t
ResultStore::prune()
{
    std::uint64_t removed = 0;
    std::error_code ec;
    fs::path objects = fs::path(root_) / "objects";
    std::vector<fs::path> victims;
    for (fs::recursive_directory_iterator
             it(objects, fs::directory_options::skip_permission_denied,
                ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec) || !looksLikeEntry(it->path()))
            continue;
        bool keep = false;
        try {
            JsonValue doc = JsonValue::parse(
                readTextFile(it->path().string()), it->path().string());
            const JsonValue *stamp = doc.find("stamp");
            keep = stamp && stamp->isString() &&
                   stamp->asString("$.stamp") == stamp_;
        } catch (const FatalError &) {
            keep = false;
        }
        if (!keep)
            victims.push_back(it->path());
    }
    for (const fs::path &p : victims)
        if (fs::remove(p, ec) && !ec)
            ++removed;
    return removed;
}

} // namespace snoc
