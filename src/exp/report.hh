/**
 * @file
 * Generic plan report: render ExperimentRunner results through a
 * ResultSink with one row per executed point.
 *
 * This is the presentation layer of the data-driven experiment API:
 * any plan — hand-written JSON, a ported bench campaign, a
 * makeResiliencePlan() expansion — renders the same way, so
 * `snoc run <plan>` and a bench binary executing the same plan emit
 * byte-identical output for every sink format. Columns cover the
 * scenario identity (via Scenario::describe(), the single labeling
 * path), the offered/delivered/latency metrics, and — when any
 * scenario in the plan arms a fault plan — the drop/refusal
 * counters.
 */

#ifndef SNOC_EXP_REPORT_HH
#define SNOC_EXP_REPORT_HH

#include <vector>

#include "exp/result_sink.hh"
#include "exp/runner.hh"

namespace snoc {

/** Render `results` (as produced by ExperimentRunner::run(plan)). */
void renderPlanReport(const ExperimentPlan &plan,
                      const std::vector<JobResult> &results,
                      ResultSink &sink);

/** Execute `plan` and render it; returns the results for reuse. */
std::vector<JobResult> runPlanReport(const ExperimentPlan &plan,
                                     ResultSink &sink,
                                     const RunnerOptions &opts = {});

} // namespace snoc

#endif // SNOC_EXP_REPORT_HH
