/**
 * @file
 * Content-addressed result store: simulate each scenario once, ever.
 *
 * A completed scenario row is cached on disk under
 *
 *     key = sha256( canonical-minimal scenario JSON
 *                   + '\n' + version/behavior stamp )
 *
 * The canonical scenario form (exp/serialize.hh) already encodes
 * every axis that can change a result — topology, router/link
 * config, routing mode, traffic spec, load, seeds, fault plan,
 * simulation windows — and the PR-4 guarantee parse(serialize(s)) ==
 * s makes the key a pure function of the scenario's *meaning*, not
 * of who built it (a bench binary, a plan file, the fuzzer). The
 * stamp folds in the build's git-describe, so a store survives
 * recompiles of the same commit but never serves rows across code
 * changes; `snoc cache prune` evicts rows whose stamp went stale.
 *
 * Execution knobs (threads, batch lanes, shards) are deliberately
 * NOT part of the key: the engine's determinism contract makes
 * results bitwise identical across execution modes, so a row cached
 * by a sharded run is exactly the row a serial run would produce —
 * and the store's own contract (enforced by test) is that a cache
 * hit is bitwise identical to a fresh simulation.
 *
 * Layout: <root>/objects/<key[0:2]>/<key>.json, one JSON document
 * per entry ({"key", "stamp", "scenario", "sim"}). Writes go
 * through a temp file + rename, so a concurrent reader (or a crash
 * mid-put) sees either the whole entry or none of it; unreadable or
 * stamp-mismatched entries degrade to cache misses, never errors.
 */

#ifndef SNOC_EXP_RESULT_STORE_HH
#define SNOC_EXP_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "exp/experiment_plan.hh"

namespace snoc {

/**
 * The version/behavior stamp folded into every store key and written
 * into journal headers: the build's git-describe plus a store schema
 * tag. Two builds with equal stamps must produce bitwise-identical
 * results for equal scenarios.
 */
std::string resultStoreStamp();

/** The store key for a scenario (64 hex chars; see file comment). */
std::string resultKey(const Scenario &scenario);

/** On-disk content-addressed cache of completed scenario rows. */
class ResultStore
{
  public:
    /**
     * Open (creating directories as needed) a store rooted at
     * `root`. `stamp` defaults to resultStoreStamp(); tests override
     * it to model entries written by another code version.
     * @throws FatalError when the root cannot be created
     */
    explicit ResultStore(std::string root, std::string stamp = {});

    /**
     * The store root from the environment (SNOC_RESULT_STORE), or ""
     * when caching is disabled.
     */
    static std::string resolveRoot();

    /**
     * The cached result under `key`, or nullopt. Missing, corrupt
     * and stale-stamped entries all count as misses.
     */
    std::optional<SimResult> lookup(const std::string &key);

    /** Cache a completed row (idempotent; atomic via tmp+rename). */
    void put(const std::string &key, const Scenario &scenario,
             const SimResult &sim);

    /** Hit/miss/put counts for this store handle (manifest stats). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t puts = 0;
    };
    Stats stats() const;

    /** Whole-store disk accounting (`snoc cache stats`). */
    struct Usage
    {
        std::uint64_t entries = 0; //!< parseable entries
        std::uint64_t stale = 0;   //!< entries with a foreign stamp
        std::uint64_t corrupt = 0; //!< unparseable entry files
        std::uint64_t bytes = 0;   //!< total entry bytes on disk
    };
    Usage usage() const;

    /** Delete every entry (`snoc cache clear`); returns the count. */
    std::uint64_t clear();

    /**
     * Delete entries whose stamp differs from this handle's stamp,
     * plus unparseable entry files (`snoc cache prune`); returns the
     * count removed.
     */
    std::uint64_t prune();

    const std::string &root() const { return root_; }
    const std::string &stamp() const { return stamp_; }

  private:
    std::string root_;
    std::string stamp_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> puts_{0};
    std::mutex writeMutex_; //!< serializes tmp-file names per handle

    std::string entryPath(const std::string &key) const;
};

} // namespace snoc

#endif // SNOC_EXP_RESULT_STORE_HH
