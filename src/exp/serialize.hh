/**
 * @file
 * JSON round-trip layer for the experiment-facing data structures.
 *
 * Scenario, TrafficSpec, FaultPlan, SimConfig, LinkConfig, Job and
 * ExperimentPlan serialize to (and parse from) the plan-file schema
 * documented in docs/SCENARIO_SCHEMA.md. Writers emit the canonical
 * minimal form — members at their default value are omitted, member
 * order is fixed — so `parse(serialize(x)) == x` holds exactly and
 * committed plan files diff cleanly. Readers are strict: unknown
 * members, wrong types and unregistered axis names (routing modes,
 * patterns, router configs, workloads, topology ids) all raise
 * FatalError with the JSON path of the offending value
 * (e.g. "$.jobs[2].scenario.routing").
 */

#ifndef SNOC_EXP_SERIALIZE_HH
#define SNOC_EXP_SERIALIZE_HH

#include <string>

#include "common/json.hh"
#include "exp/experiment_plan.hh"

namespace snoc {

// --- struct -> JsonValue (canonical minimal form) ---------------------------

JsonValue toJson(const TrafficSpec &traffic);
JsonValue toJson(const FaultPlan &faults);
JsonValue toJson(const EnergySpec &energy);
JsonValue toJson(const SimConfig &sim);
JsonValue toJson(const LinkConfig &link);
JsonValue toJson(const Scenario &scenario);
JsonValue toJson(const Job &job);
JsonValue toJson(const ExperimentPlan &plan);

// --- JsonValue -> struct (strict; `path` prefixes error messages) -----------

TrafficSpec trafficSpecFromJson(const JsonValue &v,
                                const std::string &path = "$");
EnergySpec energySpecFromJson(const JsonValue &v,
                              const std::string &path = "$");
FaultPlan faultPlanFromJson(const JsonValue &v,
                            const std::string &path = "$");
SimConfig simConfigFromJson(const JsonValue &v,
                            const std::string &path = "$");
LinkConfig linkConfigFromJson(const JsonValue &v,
                              const std::string &path = "$");
Scenario scenarioFromJson(const JsonValue &v,
                          const std::string &path = "$");
Job jobFromJson(const JsonValue &v, const std::string &path = "$");
ExperimentPlan planFromJson(const JsonValue &v,
                            const std::string &path = "$");

// --- result rows (store / journal payloads) ---------------------------------
//
// Measured results round-trip exactly: doubles are emitted as their
// shortest round-trip token (std::to_chars) and parsed with strtod,
// so a SimResult read back from the content-addressed result store
// or the write-ahead journal is bitwise identical to the freshly
// simulated one — the property the cache-hit and crash-resume
// byte-identity tests pin. EnergyMetrics are deliberately NOT
// serialized: they are a pure function of (scenario, sim) and the
// runner re-derives them after every run, cached or replayed.

JsonValue toJson(const SimCounters &counters);
JsonValue toJson(const SimResult &result);
JsonValue toJson(const ScenarioResult &point);
JsonValue toJson(const JobResult &result);

SimCounters simCountersFromJson(const JsonValue &v,
                                const std::string &path = "$");
SimResult simResultFromJson(const JsonValue &v,
                            const std::string &path = "$");
ScenarioResult scenarioResultFromJson(const JsonValue &v,
                                      const std::string &path = "$");
JobResult jobResultFromJson(const JsonValue &v,
                            const std::string &path = "$");

// --- text round trip --------------------------------------------------------

/** Pretty-printed canonical JSON, newline-terminated. */
std::string serializeScenario(const Scenario &scenario);
std::string serializePlan(const ExperimentPlan &plan);

/**
 * Parse a scenario / plan document. `origin` labels parse errors
 * (pass the file name when reading a file).
 * @throws FatalError with origin:line:col (syntax) or JSON path
 *         (schema) on malformed input
 */
Scenario parseScenario(const std::string &text,
                       const std::string &origin = "scenario");
ExperimentPlan parsePlan(const std::string &text,
                         const std::string &origin = "plan");

} // namespace snoc

#endif // SNOC_EXP_SERIALIZE_HH
