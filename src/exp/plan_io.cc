#include "exp/plan_io.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/env.hh"
#include "common/log.hh"
#include "exp/serialize.hh"

// The source tree this build was configured from; plan files named
// on the command line resolve against it as a last resort, so
// binaries work from the build directory too.
#ifndef SNOC_SOURCE_DIR
#define SNOC_SOURCE_DIR ""
#endif

namespace snoc {

std::string
readTextFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read '", path, "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

std::string
resolvePlanPath(const std::string &path)
{
    namespace fs = std::filesystem;
    std::vector<std::string> tried;
    auto candidate = [&](const std::string &p) {
        if (p.empty())
            return false;
        tried.push_back(p);
        std::error_code ec;
        return fs::is_regular_file(fs::path(p), ec);
    };

    if (candidate(path))
        return path;
    if (!fs::path(path).is_absolute()) {
        std::string planDir = envString(kEnvPlanDir, "plans");
        if (!planDir.empty() && candidate(planDir + "/" + path))
            return tried.back();
        std::string sourceDir = SNOC_SOURCE_DIR;
        if (!sourceDir.empty() && candidate(sourceDir + "/" + path))
            return tried.back();
    }

    std::string msg = "plan file '" + path + "' not found (tried:";
    for (const std::string &t : tried)
        msg += " " + t;
    fatal(msg, ")");
}

ExperimentPlan
loadPlanFile(const std::string &path)
{
    std::string resolved = resolvePlanPath(path);
    return parsePlan(readTextFile(resolved), resolved);
}

Scenario
loadScenarioFile(const std::string &path)
{
    std::string resolved = resolvePlanPath(path);
    return parseScenario(readTextFile(resolved), resolved);
}

namespace {

Cycle
quarter(Cycle c)
{
    // Shrink, never raise: explicit zeros keep their semantics.
    return c >= 4 ? c / 4 : (c > 0 ? 1 : 0);
}

void
fastScenario(Scenario &s)
{
    s.sim.warmupCycles = quarter(s.sim.warmupCycles);
    s.sim.measureCycles = quarter(s.sim.measureCycles);
    if (s.traffic.kind == TrafficSpec::Kind::Workload)
        s.traffic.workloadCycles = quarter(s.traffic.workloadCycles);
    if (s.faults.active())
        s.faults.randomFailAt = quarter(s.faults.randomFailAt);
    for (FaultEvent &e : s.faults.events)
        e.at = quarter(e.at);
}

} // namespace

void
applyFastMode(ExperimentPlan &plan)
{
    for (Job &job : plan.jobs) {
        fastScenario(job.scenario);
        if (job.kind == Job::Kind::Sweep && job.loads.size() > 2)
            job.loads = {job.loads.front(),
                         job.loads[job.loads.size() / 2]};
        if (job.kind == Job::Kind::Saturation)
            job.saturation.maxProbes =
                std::min(job.saturation.maxProbes, 6);
    }
}

} // namespace snoc
