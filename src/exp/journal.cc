#include "exp/journal.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/hash.hh"
#include "common/log.hh"
#include "exp/result_store.hh"
#include "exp/serialize.hh"

namespace snoc {

std::string
planHash(const ExperimentPlan &plan)
{
    return sha256Hex(serializePlan(plan) + resultStoreStamp());
}

ResultJournal::ResultJournal(std::string path,
                             const std::string &planHash)
    : path_(std::move(path))
{
    // O_APPEND makes each write land at the current end of file even
    // if several handles point at the same journal; combined with
    // one-line-per-write this keeps entries intact (a crash can only
    // tear the *last* line, which replay() tolerates).
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0)
        fatal("cannot open journal '", path_,
              "': ", std::strerror(errno));

    struct stat st{};
    if (::fstat(fd_, &st) != 0)
        fatal("cannot stat journal '", path_,
              "': ", std::strerror(errno));
    if (st.st_size == 0) {
        JsonValue header = JsonValue::object();
        header.set("snocJournal", JsonValue::number(1));
        header.set("plan", JsonValue::string(planHash));
        header.set("stamp", JsonValue::string(resultStoreStamp()));
        writeLine(header.dump(-1));
    }
}

ResultJournal::~ResultJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ResultJournal::writeLine(const std::string &line)
{
    std::string buf = line + "\n";
    std::size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("cannot write journal '", path_,
                  "': ", std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0)
        fatal("cannot fsync journal '", path_,
              "': ", std::strerror(errno));
}

void
ResultJournal::append(std::size_t jobIndex, const JobResult &result)
{
    JsonValue entry = JsonValue::object();
    entry.set("job", JsonValue::number(
                         static_cast<std::uint64_t>(jobIndex)));
    entry.set("result", toJson(result));
    std::string line = entry.dump(-1);

    std::lock_guard<std::mutex> lock(mutex_);
    writeLine(line);
}

std::map<std::size_t, JobResult>
ResultJournal::replay(const std::string &path,
                      const std::string &expectPlanHash)
{
    std::map<std::size_t, JobResult> completed;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return completed;

    std::string line;
    bool sawHeader = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        JsonValue doc;
        try {
            doc = JsonValue::parse(line, path);
        } catch (const FatalError &) {
            // A torn tail is the normal post-crash state; everything
            // already replayed stays valid. Anything after the tear
            // is unreachable (appends are sequential), so stop.
            break;
        }
        if (!sawHeader) {
            const JsonValue *magic = doc.find("snocJournal");
            const JsonValue *plan = doc.find("plan");
            if (!magic || !plan || !plan->isString())
                fatal("journal '", path,
                      "' has no valid header; delete it or rerun "
                      "without --resume");
            if (plan->asString("$.plan") != expectPlanHash)
                fatal("journal '", path,
                      "' was written for a different plan or code "
                      "version; delete it or rerun without --resume");
            sawHeader = true;
            continue;
        }
        const JsonValue *job = doc.find("job");
        const JsonValue *result = doc.find("result");
        if (!job || !result)
            break;
        try {
            std::size_t idx = static_cast<std::size_t>(
                job->asU64("$.job"));
            completed[idx] = jobResultFromJson(*result, "$.result");
        } catch (const FatalError &) {
            break;
        }
    }
    return completed;
}

void
ResultJournal::remove(const std::string &path)
{
    ::unlink(path.c_str());
}

} // namespace snoc
