/**
 * @file
 * Resilience sweep strategy: failure fraction x offered load as an
 * ExperimentPlan.
 *
 * Section 2.1 of the paper attributes Slim NoC's "high resilience to
 * link failures" to the expander structure of the MMS graphs. The
 * static analyzer (graph/resilience.hh) quantifies that on the bare
 * graph; this strategy asks the dynamic question — what happens to
 * delivered throughput, latency, and drop counts when the configured
 * fraction of links dies *mid-flight* — by fanning a base Scenario
 * out over (failure fraction x load) points, each carrying a seeded
 * random-link-failure FaultPlan that strikes at the end of warmup.
 *
 * Every point (including the 0%-failure baseline) runs with an
 * *armed* plan, so the whole curve uses the same fault-aware routing
 * and bookkeeping and fractions are comparable like for like.
 */

#ifndef SNOC_EXP_RESILIENCE_HH
#define SNOC_EXP_RESILIENCE_HH

#include <vector>

#include "exp/experiment_plan.hh"

namespace snoc {

/** Axes of a resilience sweep. */
struct ResilienceSpec
{
    /** Link-failure fractions; include 0.0 for the baseline row. */
    std::vector<double> failureFractions = {0.0, 0.05, 0.10, 0.20};

    /** Offered loads swept at each fraction. */
    std::vector<double> loads = {0.02, 0.06, 0.16};

    /**
     * Cycle at which the failures strike; 0 resolves to the base
     * Scenario's warmup length, so the measurement window observes
     * the degraded network plus the fault transient.
     */
    Cycle failAt = 0;

    /**
     * Seed for the random link draw. Each fraction re-draws from
     * `faultSeed + fraction index`, so deeper fractions are fresh
     * samples rather than supersets of shallower ones.
     */
    std::uint64_t faultSeed = 1;
};

/**
 * Expand `base` over the spec's (fraction x load) grid. One Single
 * job per point, labeled "<base>/fail<percent>%@<load>"; job order is
 * fraction-major, so results slice back into per-fraction curves.
 */
ExperimentPlan makeResiliencePlan(const Scenario &base,
                                  const ResilienceSpec &spec = {});

} // namespace snoc

#endif // SNOC_EXP_RESILIENCE_HH
