/**
 * @file
 * ExperimentPlan: a pure-data batch of experiment jobs.
 *
 * A job is a single Scenario, a load sweep over a base Scenario, or
 * a bisection saturation search. Jobs carry no execution state, so a
 * plan can be built anywhere (bench binaries, examples, tests) and
 * handed to an ExperimentRunner, which schedules jobs across worker
 * threads. Sweeps and saturation searches stay sequential *within*
 * the job (each point depends on the previous one's outcome) but
 * independent jobs run concurrently.
 */

#ifndef SNOC_EXP_EXPERIMENT_PLAN_HH
#define SNOC_EXP_EXPERIMENT_PLAN_HH

#include <string>
#include <vector>

#include "exp/scenario.hh"
#include "exp/strategies.hh"

namespace snoc {

/** One schedulable unit of a plan. */
struct Job
{
    enum class Kind
    {
        Single,     //!< run `scenario` as-is
        Sweep,      //!< run `scenario` at each of `loads`
        Saturation, //!< bisection search from `scenario`
    };

    Kind kind = Kind::Single;
    Scenario scenario; //!< the point, or the sweep/search base

    // Sweep only.
    std::vector<double> loads;
    bool stopAtSaturation = true;
    double saturationFactor = 6.0;

    // Saturation only.
    SaturationSpec saturation;

    bool operator==(const Job &) const = default;
};

/**
 * Energy metrics derived from a point's measurement-window counters
 * by the analytical PowerModel. A pure function of (scenario,
 * SimResult), evaluated by the runner after execution, so the values
 * are bitwise identical across serial, batched, and sharded runs.
 * `valid` is false unless the scenario's energy spec is enabled.
 */
struct EnergyMetrics
{
    bool valid = false;
    double dynamicW = 0.0;       //!< window dynamic power [W]
    double staticW = 0.0;        //!< leakage [W]
    double totalW = 0.0;         //!< static + dynamic [W]
    double flitsPerJoule = 0.0;  //!< delivered throughput per watt
    double edpJs = 0.0;          //!< energy-delay product [J*s]

    bool operator==(const EnergyMetrics &) const = default;
};

/** A Scenario together with its measured result. */
struct ScenarioResult
{
    Scenario scenario;
    SimResult sim;
    EnergyMetrics energy; //!< filled when scenario.energy.enabled

    /**
     * False when this point's evaluation failed (threw, crashed in
     * its isolation child, or hit the watchdog) under the Record
     * failure policy; `sim` is then default-constructed and `error`
     * carries the reason. Report/sinks render such points as
     * status=failed rows instead of aborting the campaign.
     */
    bool ok = true;
    std::string error;

    bool operator==(const ScenarioResult &) const = default;
};

/** Terminal state of a job under RunnerOptions::onFailure. */
enum class JobStatus
{
    Ok,     //!< every point evaluated successfully
    Failed, //!< at least one point is a failed row
};

/** Result of one job, point-ordered as executed. */
struct JobResult
{
    Job::Kind kind = Job::Kind::Single;
    std::vector<ScenarioResult> points; //!< 1 for Single; else many

    // Saturation only.
    double saturationLoad = 0.0;
    double bestThroughput = 0.0;

    // Execution bookkeeping (the reproducibility manifest and the
    // write-ahead journal record these; they never feed back into
    // simulation results).
    JobStatus status = JobStatus::Ok;
    std::string error;    //!< first point failure, empty when Ok
    int retries = 0;      //!< extra evaluation attempts consumed
    int cacheHits = 0;    //!< points served by the result store
    int cacheMisses = 0;  //!< points actually simulated
    double wallMs = 0.0;  //!< wall-clock spent evaluating this job

    bool operator==(const JobResult &) const = default;
};

/** An ordered batch of jobs; results keep plan order. */
struct ExperimentPlan
{
    std::string name;
    std::vector<Job> jobs;

    /** Append a single-scenario job. */
    ExperimentPlan &
    add(Scenario s)
    {
        Job j;
        j.scenario = std::move(s);
        jobs.push_back(std::move(j));
        return *this;
    }

    /** Append a load sweep over `base` (its `load` is overridden). */
    ExperimentPlan &
    addSweep(Scenario base, std::vector<double> loads,
             bool stopAtSaturation = true, double saturationFactor = 6.0)
    {
        Job j;
        j.kind = Job::Kind::Sweep;
        j.scenario = std::move(base);
        j.loads = std::move(loads);
        j.stopAtSaturation = stopAtSaturation;
        j.saturationFactor = saturationFactor;
        jobs.push_back(std::move(j));
        return *this;
    }

    /** Append a saturation search from `base`. */
    ExperimentPlan &
    addSaturation(Scenario base, SaturationSpec spec = {})
    {
        Job j;
        j.kind = Job::Kind::Saturation;
        j.scenario = std::move(base);
        j.saturation = spec;
        jobs.push_back(std::move(j));
        return *this;
    }

    std::size_t size() const { return jobs.size(); }
    bool empty() const { return jobs.empty(); }

    bool operator==(const ExperimentPlan &) const = default;
};

} // namespace snoc

#endif // SNOC_EXP_EXPERIMENT_PLAN_HH
