#include "exp/strategies.hh"

#include <algorithm>

namespace snoc {

std::vector<LoadPoint>
runLoadSweep(const PointEvaluator &eval,
             const std::vector<double> &loads, bool stopAtSaturation,
             double saturationFactor)
{
    std::vector<LoadPoint> points;
    double baseLatency = -1.0;
    for (double load : loads) {
        SimResult res = eval(load);
        points.push_back({load, res});
        if (baseLatency < 0.0 && res.packetsDelivered > 0)
            baseLatency = res.avgPacketLatency;
        bool saturated =
            !res.stable ||
            (baseLatency > 0.0 &&
             res.avgPacketLatency > saturationFactor * baseLatency);
        if (stopAtSaturation && saturated)
            break;
    }
    return points;
}

SaturationResult
findSaturation(const PointEvaluator &eval, const SaturationSpec &spec)
{
    SaturationResult out;
    int probesLeft = std::max(2, spec.maxProbes);

    auto probe = [&](double load) -> const SimResult & {
        SimResult res = eval(load);
        out.probes.push_back({load, res});
        out.bestThroughput =
            std::max(out.bestThroughput, res.throughput);
        --probesLeft;
        return out.probes.back().result;
    };

    // The network may already sustain full injection bandwidth.
    if (probe(spec.hiLoad).stable) {
        out.saturationLoad = spec.hiLoad;
        return out;
    }

    // Saturated below the starting load: report the floor probe.
    if (!probe(spec.loLoad).stable) {
        out.saturationLoad = 0.0;
        return out;
    }

    double lo = spec.loLoad; // known stable
    double hi = spec.hiLoad; // known unstable
    while (hi - lo > spec.tolerance && probesLeft > 0) {
        double mid = 0.5 * (lo + hi);
        if (probe(mid).stable)
            lo = mid;
        else
            hi = mid;
    }
    out.saturationLoad = lo;
    return out;
}

} // namespace snoc
