/**
 * @file
 * Write-ahead result journal: crash-safe record of completed jobs.
 *
 * While a campaign runs, every job that completes successfully is
 * appended to a JSONL journal and fsync'd before the runner moves
 * on, so the set of durable rows is always a prefix-closed subset of
 * the work actually done — no matter when the process dies (SIGKILL
 * included). `snoc run --resume` replays the journal, skips the jobs
 * it already holds, and produces output byte-identical to an
 * uninterrupted run.
 *
 * Format (one JSON document per line, compact form):
 *
 *     {"snocJournal":1,"plan":"<sha256>","stamp":"<stamp>"}
 *     {"job":3,"result":{...JobResult...}}
 *     {"job":0,"result":{...}}
 *
 * The header binds the journal to a specific plan *content* and code
 * version: `plan` is sha256(canonical plan JSON + stamp), so resuming
 * after editing the plan file or rebuilding across commits fails
 * loudly instead of splicing stale rows into fresh ones. Entries may
 * arrive in any order (worker threads finish when they finish); only
 * jobs with status=ok are journaled, so failed jobs are re-attempted
 * on resume. A torn final line — the expected state after a crash
 * mid-append — is silently dropped during replay.
 */

#ifndef SNOC_EXP_JOURNAL_HH
#define SNOC_EXP_JOURNAL_HH

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "exp/experiment_plan.hh"

namespace snoc {

/**
 * Identity of a plan's content + code version, as recorded in
 * journal headers: sha256(canonical plan JSON + resultStoreStamp()).
 */
std::string planHash(const ExperimentPlan &plan);

/** Append-only fsync'd journal of per-job completions. */
class ResultJournal
{
  public:
    /**
     * Open `path` for appending. A fresh or truncated-empty file
     * gets the header line immediately; an existing journal is
     * appended to as-is (the caller replays + validates it first).
     * @throws FatalError when the file cannot be opened or written
     */
    ResultJournal(std::string path, const std::string &planHash);
    ~ResultJournal();

    ResultJournal(const ResultJournal &) = delete;
    ResultJournal &operator=(const ResultJournal &) = delete;

    /**
     * Durably record that plan job `jobIndex` completed with
     * `result`. Returns only after the entry is written and fsync'd;
     * thread-safe.
     */
    void append(std::size_t jobIndex, const JobResult &result);

    const std::string &path() const { return path_; }

    /**
     * Parse the journal at `path` into {job index -> result}.
     * Missing file -> empty map. A torn/corrupt line ends the replay
     * (everything before it is kept). Entries for the same job keep
     * the last occurrence.
     * @throws FatalError when the header's plan hash differs from
     *         `expectPlanHash` — the journal belongs to a different
     *         plan or code version and must not seed a resume
     */
    static std::map<std::size_t, JobResult>
    replay(const std::string &path, const std::string &expectPlanHash);

    /** Delete the journal file if present (clean-success cleanup). */
    static void remove(const std::string &path);

  private:
    std::string path_;
    int fd_ = -1;
    std::mutex mutex_;

    void writeLine(const std::string &line);
};

} // namespace snoc

#endif // SNOC_EXP_JOURNAL_HH
