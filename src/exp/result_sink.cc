#include "exp/result_sink.hh"

#include <cmath>
#include <cstdlib>
#include <functional>
#include <ostream>

#include "common/log.hh"
#include "common/registry.hh"
#include "common/table.hh"

namespace snoc {

// --- TableSink --------------------------------------------------------------

struct TableSink::Impl
{
    std::unique_ptr<TextTable> table;
};

TableSink::TableSink(std::ostream &os)
    : os_(os), impl_(std::make_unique<Impl>())
{
}

TableSink::~TableSink() = default;

void
TableSink::beginTable(const std::string &title,
                      const std::vector<std::string> &columns)
{
    SNOC_ASSERT(!impl_->table, "beginTable with a table still open");
    if (!title.empty())
        os_ << "\n=== " << title << " ===\n\n";
    impl_->table = std::make_unique<TextTable>(columns);
}

void
TableSink::addRow(const std::vector<std::string> &cells)
{
    SNOC_ASSERT(impl_->table, "addRow outside beginTable/endTable");
    impl_->table->addRow(cells);
}

void
TableSink::endTable()
{
    SNOC_ASSERT(impl_->table, "endTable without beginTable");
    impl_->table->print(os_);
    impl_->table.reset();
}

void
TableSink::note(const std::string &text)
{
    os_ << text << "\n";
}

// --- CsvSink ----------------------------------------------------------------

namespace {

/** Quote a CSV cell when it contains a delimiter, quote or newline. */
void
csvCell(std::ostream &os, const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos) {
        os << cell;
        return;
    }
    os << '"';
    for (char c : cell) {
        if (c == '"')
            os << '"';
        os << c;
    }
    os << '"';
}

void
csvRow(std::ostream &os, const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            os << ',';
        csvCell(os, cells[i]);
    }
    os << '\n';
}

/**
 * True when the cell is safe to emit as a raw JSON number: it must
 * parse fully as a finite value AND use only characters JSON's
 * number grammar allows (strtod also accepts hex, "inf" and "nan",
 * none of which are valid JSON).
 */
bool
isNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    if (cell.find_first_not_of("0123456789+-.eE") !=
        std::string::npos)
        return false;
    char *end = nullptr;
    double v = std::strtod(cell.c_str(), &end);
    return end == cell.c_str() + cell.size() && std::isfinite(v);
}

void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
    os << '"';
}

} // namespace

CsvSink::CsvSink(std::ostream &os) : os_(os) {}

void
CsvSink::beginTable(const std::string &title,
                    const std::vector<std::string> &columns)
{
    if (!first_)
        os_ << '\n';
    first_ = false;
    if (!title.empty())
        os_ << "# " << title << '\n';
    csvRow(os_, columns);
}

void
CsvSink::addRow(const std::vector<std::string> &cells)
{
    csvRow(os_, cells);
}

void
CsvSink::endTable()
{
}

// --- JsonSink ---------------------------------------------------------------

JsonSink::JsonSink(std::ostream &os) : os_(os) {}

JsonSink::~JsonSink()
{
    finish();
}

void
JsonSink::beginTable(const std::string &title,
                     const std::vector<std::string> &columns)
{
    SNOC_ASSERT(!finished_, "beginTable after finish()");
    os_ << (anyTable_ ? ",\n" : "[\n");
    anyTable_ = true;
    anyRow_ = false;
    columns_ = columns;
    os_ << "  {\"title\": ";
    jsonString(os_, title);
    os_ << ", \"columns\": [";
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i > 0)
            os_ << ", ";
        jsonString(os_, columns[i]);
    }
    os_ << "], \"rows\": [";
}

void
JsonSink::addRow(const std::vector<std::string> &cells)
{
    os_ << (anyRow_ ? ",\n    {" : "\n    {");
    anyRow_ = true;
    for (std::size_t i = 0; i < cells.size() && i < columns_.size();
         ++i) {
        if (i > 0)
            os_ << ", ";
        jsonString(os_, columns_[i]);
        os_ << ": ";
        if (isNumeric(cells[i]))
            os_ << cells[i];
        else
            jsonString(os_, cells[i]);
    }
    os_ << '}';
}

void
JsonSink::endTable()
{
    os_ << (anyRow_ ? "\n  ]}" : "]}");
}

void
JsonSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    os_ << (anyTable_ ? "\n]\n" : "[]\n");
}

// --- TeeSink ----------------------------------------------------------------

TeeSink::TeeSink(std::vector<ResultSink *> sinks)
    : sinks_(std::move(sinks))
{
}

void
TeeSink::beginTable(const std::string &title,
                    const std::vector<std::string> &columns)
{
    for (ResultSink *s : sinks_)
        s->beginTable(title, columns);
}

void
TeeSink::addRow(const std::vector<std::string> &cells)
{
    for (ResultSink *s : sinks_)
        s->addRow(cells);
}

void
TeeSink::endTable()
{
    for (ResultSink *s : sinks_)
        s->endTable();
}

void
TeeSink::note(const std::string &text)
{
    for (ResultSink *s : sinks_)
        s->note(text);
}

// --- factory ----------------------------------------------------------------

namespace {

using SinkFactory =
    std::function<std::unique_ptr<ResultSink>(std::ostream &)>;

/** The name <-> sink-factory registry ("" aliases to "table"). */
const NamedRegistry<SinkFactory> &
sinkRegistry()
{
    static const NamedRegistry<SinkFactory> reg(
        "result sink format",
        {
            {"table",
             [](std::ostream &os) {
                 return std::make_unique<TableSink>(os);
             }},
            {"csv",
             [](std::ostream &os) {
                 return std::make_unique<CsvSink>(os);
             }},
            {"json",
             [](std::ostream &os) {
                 return std::make_unique<JsonSink>(os);
             }},
        });
    return reg;
}

} // namespace

std::unique_ptr<ResultSink>
makeResultSink(const std::string &format, std::ostream &os)
{
    return sinkRegistry().get(format.empty() ? "table" : format)(os);
}

const std::vector<std::string> &
resultSinkFormats()
{
    return sinkRegistry().names();
}

} // namespace snoc
