#include "exp/report.hh"

#include "common/table.hh"
#include "topo/topology_cache.hh"

namespace snoc {

namespace {

std::string
trafficCell(const TrafficSpec &traffic)
{
    switch (traffic.kind) {
      case TrafficSpec::Kind::Workload:
        return traffic.workload;
      case TrafficSpec::Kind::ClosedLoop:
        return "cl-" + to_string(traffic.pattern);
      case TrafficSpec::Kind::Collective:
        return "coll-" + to_string(traffic.collective.kind);
      case TrafficSpec::Kind::Synthetic:
        break;
    }
    return to_string(traffic.pattern);
}

bool
isClosedLoopKind(const TrafficSpec &traffic)
{
    return traffic.kind == TrafficSpec::Kind::ClosedLoop ||
           traffic.kind == TrafficSpec::Kind::Collective;
}

} // namespace

void
renderPlanReport(const ExperimentPlan &plan,
                 const std::vector<JobResult> &results,
                 ResultSink &sink)
{
    bool anyFaults = false;
    bool anySaturation = false;
    bool anyEnergy = false;
    bool anyClosedLoop = false;
    for (const Job &job : plan.jobs) {
        anyFaults = anyFaults || job.scenario.faults.active();
        anySaturation =
            anySaturation || job.kind == Job::Kind::Saturation;
        anyEnergy = anyEnergy || job.scenario.energy.enabled;
        anyClosedLoop =
            anyClosedLoop || isClosedLoopKind(job.scenario.traffic);
    }
    // The status column appears only when some row actually failed,
    // so fully-green campaigns render byte-identically to builds
    // that predate failure recording (committed goldens included).
    bool anyFailed = false;
    for (const JobResult &job : results)
        for (const ScenarioResult &point : job.points)
            anyFailed = anyFailed || !point.ok;

    std::vector<std::string> columns = {
        "scenario",      "topology",   "router",
        "routing",       "traffic",    "load",
        "offered",       "throughput", "latency [cyc]",
        "latency [ns]",  "hops",       "stable"};
    if (anyFaults) {
        for (const char *c :
             {"fault_events", "flits_dropped", "packets_dropped",
              "packets_unroutable", "packets_refused"})
            columns.push_back(c);
    }
    if (anyEnergy) {
        // Snake-case names keyable by scripts/bench_compare.py;
        // edp_pjs is the energy-delay product scaled to pJ*s so the
        // fixed-precision cells stay readable.
        for (const char *c : {"tech", "dynamic_w", "static_w",
                              "total_w", "flits_per_joule",
                              "edp_pjs"})
            columns.push_back(c);
    }
    if (anyClosedLoop) {
        // Closed-loop rows have no configured offered load; their
        // "offered" cell is the accepted rate (windows only issue
        // what deliveries free up), and these columns carry the
        // feedback-side metrics.
        for (const char *c : {"window", "win_occ", "req_lat",
                              "stall_frac", "phases"})
            columns.push_back(c);
    }
    if (anyFailed)
        columns.push_back("status");

    sink.beginTable(plan.name, columns);
    for (const JobResult &job : results) {
        for (const ScenarioResult &point : job.points) {
            const Scenario &s = point.scenario;
            const SimResult &r = point.sim;
            bool cl = isClosedLoopKind(s.traffic);

            if (!point.ok) {
                // Failed rows render from the scenario alone: the
                // topology may be the very thing that failed to
                // build, so the TopologyCache is never consulted.
                std::vector<std::string> row = {
                    s.describe(),
                    s.topology,
                    s.routerConfig,
                    to_string(s.routing),
                    trafficCell(s.traffic),
                    cl ? "-" : TextTable::fmt(s.load, 3)};
                while (row.size() + 1 < columns.size())
                    row.push_back("-");
                row.push_back("failed");
                sink.addRow(row);
                continue;
            }

            const NocTopology &topo =
                TopologyCache::instance().get(s.topology);
            double cycleNs = topo.cycleTimeNs();
            std::vector<std::string> row = {
                s.describe(),
                s.topology,
                s.routerConfig,
                to_string(s.routing),
                trafficCell(s.traffic),
                // Closed-loop/collective points have no configured
                // load knob; a dash keeps the column honest.
                cl ? "-" : TextTable::fmt(s.load, 3),
                TextTable::fmt(r.offeredLoad, 4),
                TextTable::fmt(r.throughput, 4),
                TextTable::fmt(r.avgPacketLatency, 2),
                TextTable::fmt(r.avgPacketLatency * cycleNs, 1),
                TextTable::fmt(r.avgHops, 2),
                r.stable ? "yes" : "no"};
            if (anyFaults) {
                row.push_back(
                    TextTable::fmt(r.counters.faultEvents));
                row.push_back(
                    TextTable::fmt(r.counters.flitsDropped));
                row.push_back(
                    TextTable::fmt(r.counters.packetsDropped));
                row.push_back(
                    TextTable::fmt(r.counters.packetsUnroutable));
                row.push_back(
                    TextTable::fmt(r.counters.packetsRefused));
            }
            if (anyEnergy) {
                const EnergyMetrics &e = point.energy;
                if (e.valid) {
                    row.push_back(s.energy.tech);
                    row.push_back(TextTable::fmt(e.dynamicW, 4));
                    row.push_back(TextTable::fmt(e.staticW, 4));
                    row.push_back(TextTable::fmt(e.totalW, 4));
                    row.push_back(
                        TextTable::fmt(e.flitsPerJoule, 0));
                    row.push_back(
                        TextTable::fmt(e.edpJs * 1e12, 4));
                } else {
                    // Mixed plan: this point has no energy spec.
                    for (int i = 0; i < 6; ++i)
                        row.push_back("-");
                }
            }
            if (anyClosedLoop) {
                if (cl) {
                    const SimCounters &c = r.counters;
                    double nodeCycles =
                        static_cast<double>(topo.numNodes()) *
                        static_cast<double>(s.sim.measureCycles);
                    // Window/occupancy/stall columns only make
                    // sense for windowed (closed-loop) points;
                    // collective schedules have no windows.
                    bool window =
                        s.traffic.kind == TrafficSpec::Kind::ClosedLoop;
                    row.push_back(
                        window
                            ? TextTable::fmt(s.traffic.closedLoop.window)
                            : "-");
                    row.push_back(
                        window && nodeCycles > 0
                            ? TextTable::fmt(
                                  static_cast<double>(
                                      c.clWindowOccupancy) /
                                      nodeCycles,
                                  3)
                            : "-");
                    row.push_back(
                        c.clRepliesMatched > 0
                            ? TextTable::fmt(
                                  static_cast<double>(
                                      c.clReqLatencySum) /
                                      static_cast<double>(
                                          c.clRepliesMatched),
                                  2)
                            : "-");
                    row.push_back(
                        window && nodeCycles > 0
                            ? TextTable::fmt(
                                  static_cast<double>(
                                      c.clStallNodeCycles) /
                                      nodeCycles,
                                  3)
                            : "-");
                    row.push_back(
                        TextTable::fmt(c.clPhasesCompleted));
                } else {
                    // Mixed plan: open-loop point in a closed-loop
                    // table.
                    for (int i = 0; i < 5; ++i)
                        row.push_back("-");
                }
            }
            if (anyFailed)
                row.push_back("ok");
            sink.addRow(row);
        }
    }
    sink.endTable();

    if (anySaturation) {
        sink.beginTable(
            plan.name.empty() ? "saturation searches"
                              : plan.name + ": saturation searches",
            {"scenario", "saturation_load", "best_throughput"});
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (plan.jobs[i].kind != Job::Kind::Saturation)
                continue;
            sink.addRow({plan.jobs[i].scenario.describe(),
                         TextTable::fmt(results[i].saturationLoad, 4),
                         TextTable::fmt(results[i].bestThroughput,
                                        4)});
        }
        sink.endTable();
    }
}

std::vector<JobResult>
runPlanReport(const ExperimentPlan &plan, ResultSink &sink,
              const RunnerOptions &opts)
{
    std::vector<JobResult> results = ExperimentRunner(opts).run(plan);
    renderPlanReport(plan, results, sink);
    return results;
}

} // namespace snoc
