/**
 * @file
 * ExperimentRunner: executes an ExperimentPlan on a worker pool.
 *
 * Each job builds its own Network (the topology comes read-only from
 * the process-wide TopologyCache) and draws from RNGs seeded only by
 * its Scenario, so a plan's results are a pure function of the plan:
 * running with 1 thread or N threads yields bitwise-identical
 * SimResults, in plan order. This is the execution half of the
 * scenario/execution split — campaign code describes points and the
 * runner saturates the machine.
 */

#ifndef SNOC_EXP_RUNNER_HH
#define SNOC_EXP_RUNNER_HH

#include <functional>
#include <vector>

#include "exp/experiment_plan.hh"

namespace snoc {

/** Execution knobs; the plan itself stays pure data. */
struct RunnerOptions
{
    /**
     * Worker threads. 0 resolves SNOC_EXP_THREADS, falling back to
     * std::thread::hardware_concurrency(). 1 runs inline (the serial
     * reference the determinism tests compare against).
     */
    int threads = 0;

    /** Optional progress callback: (jobs done, jobs total). */
    std::function<void(std::size_t, std::size_t)> progress;
};

/** Plan executor; stateless between run() calls. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions opts = {});

    /**
     * Execute every job; results are indexed exactly like plan.jobs.
     * Exceptions thrown by a job (e.g. unknown topology id) are
     * rethrown on the calling thread after the pool drains.
     */
    std::vector<JobResult> run(const ExperimentPlan &plan) const;

    /** Execute one scenario on the calling thread. */
    static SimResult runScenario(const Scenario &s);

    /** The resolved worker count run() will use. */
    int threadCount() const { return threads_; }

  private:
    int threads_;
    RunnerOptions opts_;

    JobResult runJob(const Job &job) const;
};

} // namespace snoc

#endif // SNOC_EXP_RUNNER_HH
