/**
 * @file
 * ExperimentRunner: executes an ExperimentPlan on a worker pool.
 *
 * Each job builds its own Network (the topology comes read-only from
 * the process-wide TopologyCache) and draws from RNGs seeded only by
 * its Scenario, so a plan's results are a pure function of the plan:
 * running with 1 thread or N threads yields bitwise-identical
 * SimResults, in plan order. This is the execution half of the
 * scenario/execution split — campaign code describes points and the
 * runner saturates the machine.
 */

#ifndef SNOC_EXP_RUNNER_HH
#define SNOC_EXP_RUNNER_HH

#include <functional>
#include <vector>

#include "exp/experiment_plan.hh"

namespace snoc {

/** Execution knobs; the plan itself stays pure data. */
struct RunnerOptions
{
    /**
     * Worker threads. 0 resolves SNOC_EXP_THREADS, falling back to
     * std::thread::hardware_concurrency(). 1 runs inline (the serial
     * reference the determinism tests compare against).
     */
    int threads = 0;

    /** Optional progress callback: (jobs done, jobs total). */
    std::function<void(std::size_t, std::size_t)> progress;

    /**
     * Same-topology co-simulation (src/sim/batch.hh): compatible
     * synthetic-traffic evaluation points — Single jobs and the
     * points of non-stopping Sweeps that share (topology, router
     * config, link, routing mode) — run as lanes of one
     * BatchedNetwork instead of N sequential Networks. Results are
     * bitwise identical either way; this is purely an execution
     * knob, like `threads`. Saturation searches, saturation-stopping
     * sweeps, and workload traffic always run unbatched.
     *
     * -1 resolves SNOC_EXP_BATCH (unset = 8 lanes; "off"/"0"
     * disables; 2-64 caps). 0 or 1 disables batching; >= 2 caps the
     * lanes per batch directly.
     */
    int batchLanes = -1;

    /**
     * Space-sharded cycle loop (src/sim/shard.hh): step each
     * synthetic-traffic simulation with N threads over a partition
     * of its router graph. Results are bitwise identical to serial;
     * like `threads` and `batchLanes` this is purely an execution
     * knob. Sharding targets one *big* topology where batching
     * targets many small scenarios, so shards >= 2 disables lane
     * batching, and the worker pool is divided by the shard count so
     * a plan claims ~`threads` cores in total. Workload traffic
     * (internally stepped reply loops) always runs serial.
     *
     * -1 resolves SNOC_SIM_SHARDS (unset/"off"/"0"/"1" = serial;
     * 2-64 sets the shard count). 0 or 1 keeps the serial loop;
     * >= 2 sets the shard count directly (clamped to 64, and to the
     * topology's router count at attach time).
     */
    int simShards = -1;
};

/**
 * Evaluate a point's energy metrics from its measurement-window
 * counters (zeroed/invalid when the scenario's energy spec is
 * disabled). Pure function of its arguments — the runner applies it
 * to every result after execution, so energy values cannot depend on
 * the execution mode (serial / batched / sharded).
 */
EnergyMetrics evaluateEnergy(const Scenario &s, const SimResult &r);

/** Plan executor; stateless between run() calls. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions opts = {});

    /**
     * Execute every job; results are indexed exactly like plan.jobs.
     * Exceptions thrown by a job (e.g. unknown topology id) are
     * rethrown on the calling thread after the pool drains.
     */
    std::vector<JobResult> run(const ExperimentPlan &plan) const;

    /** Execute one scenario on the calling thread. */
    static SimResult runScenario(const Scenario &s);

    /**
     * Execute one scenario, stepping it with `simShards` threads
     * when it is synthetic-traffic (workloads run serial). Bitwise
     * identical to runScenario(s) for any shard count.
     */
    static SimResult runScenario(const Scenario &s, int simShards);

    /** The resolved worker count run() will use. */
    int threadCount() const { return threads_; }

    /** The resolved lanes-per-batch cap (0 = batching disabled). */
    int batchLaneCount() const { return batchLanes_; }

    /** The resolved per-simulation shard count (1 = serial loop). */
    int simShardCount() const { return simShards_; }

  private:
    int threads_;
    int batchLanes_;
    int simShards_;
    RunnerOptions opts_;

    JobResult runJob(const Job &job) const;
    std::vector<JobResult> runBatched(const ExperimentPlan &plan) const;
};

} // namespace snoc

#endif // SNOC_EXP_RUNNER_HH
