/**
 * @file
 * ExperimentRunner: executes an ExperimentPlan on a worker pool.
 *
 * Each job builds its own Network (the topology comes read-only from
 * the process-wide TopologyCache) and draws from RNGs seeded only by
 * its Scenario, so a plan's results are a pure function of the plan:
 * running with 1 thread or N threads yields bitwise-identical
 * SimResults, in plan order. This is the execution half of the
 * scenario/execution split — campaign code describes points and the
 * runner saturates the machine.
 *
 * Crash-safe campaign support layers on top of the same contract:
 * a content-addressed result store serves previously simulated
 * points bitwise-identically (RunnerOptions::store), a per-job
 * completion callback feeds the write-ahead journal
 * (RunnerOptions::jobDone / completed), and evaluations can run
 * under a watchdog with bounded retries in forked worker processes
 * so a crash or hang becomes one failed row instead of a lost
 * campaign (jobTimeoutMs / retries / isolate / onFailure).
 */

#ifndef SNOC_EXP_RUNNER_HH
#define SNOC_EXP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "exp/experiment_plan.hh"

namespace snoc {

class ResultStore;

/**
 * What to do when a point evaluation fails (throws, crashes in its
 * isolation child, or trips the watchdog) after retries run out.
 */
enum class FailurePolicy
{
    /**
     * Rethrow on the calling thread — the library default, so
     * programmatic campaigns keep exception semantics.
     */
    Abort,
    /**
     * Record a status=failed row (ScenarioResult::ok = false) and
     * keep going — the CLI default, so one bad job cannot take down
     * an overnight campaign. `snoc run` exits nonzero iff any row
     * failed.
     */
    Record,
};

/** Execution knobs; the plan itself stays pure data. */
struct RunnerOptions
{
    /**
     * Worker threads. 0 resolves SNOC_EXP_THREADS, falling back to
     * std::thread::hardware_concurrency(). 1 runs inline (the serial
     * reference the determinism tests compare against).
     */
    int threads = 0;

    /** Optional progress callback: (jobs done, jobs total). */
    std::function<void(std::size_t, std::size_t)> progress;

    /**
     * Same-topology co-simulation (src/sim/batch.hh): compatible
     * synthetic-traffic evaluation points — Single jobs and the
     * points of non-stopping Sweeps that share (topology, router
     * config, link, routing mode) — run as lanes of one
     * BatchedNetwork instead of N sequential Networks. Results are
     * bitwise identical either way; this is purely an execution
     * knob, like `threads`. Saturation searches, saturation-stopping
     * sweeps, and workload traffic always run unbatched.
     *
     * -1 resolves SNOC_EXP_BATCH (unset = 8 lanes; "off"/"0"
     * disables; 2-64 caps). 0 or 1 disables batching; >= 2 caps the
     * lanes per batch directly.
     */
    int batchLanes = -1;

    /**
     * Space-sharded cycle loop (src/sim/shard.hh): step each
     * synthetic-traffic simulation with N threads over a partition
     * of its router graph. Results are bitwise identical to serial;
     * like `threads` and `batchLanes` this is purely an execution
     * knob. Sharding targets one *big* topology where batching
     * targets many small scenarios, so shards >= 2 disables lane
     * batching, and the worker pool is divided by the shard count so
     * a plan claims ~`threads` cores in total. Workload traffic
     * (internally stepped reply loops) always runs serial.
     *
     * -1 resolves SNOC_SIM_SHARDS (unset/"off"/"0"/"1" = serial;
     * 2-64 sets the shard count). 0 or 1 keeps the serial loop;
     * >= 2 sets the shard count directly (clamped to 64, and to the
     * topology's router count at attach time).
     */
    int simShards = -1;

    /** Failure handling after retries are exhausted (see enum). */
    FailurePolicy onFailure = FailurePolicy::Abort;

    /**
     * Optional content-addressed result store (exp/result_store.hh).
     * Points whose key is present are served from disk — bitwise
     * identical to a fresh simulation — and freshly simulated points
     * are written back. Not owned; must outlive run().
     */
    ResultStore *store = nullptr;

    /**
     * Watchdog deadline per scenario evaluation, in milliseconds.
     * -1 resolves SNOC_EXP_JOB_TIMEOUT (seconds; unset = none).
     * 0 disables. A positive timeout forces process isolation — a
     * hung in-process evaluation cannot be killed safely.
     */
    long jobTimeoutMs = -1;

    /**
     * Extra attempts per failed evaluation, with exponential backoff
     * between attempts. -1 resolves SNOC_EXP_RETRIES (unset = 0).
     * Only after the last attempt fails does onFailure apply.
     */
    int retries = -1;

    /**
     * Process isolation: run each scenario evaluation in a forked
     * child, results returned over a pipe, so a crash (segfault,
     * abort, OOM kill) is contained to one failed row. -1 resolves
     * SNOC_EXP_ISOLATE ("fork"/"1" enables); 0 in-process; 1 fork.
     * Isolation disables lane batching (children run one scenario
     * each, serially).
     */
    int isolate = -1;

    /**
     * Completion callback: invoked once per executed job, as soon as
     * that job's result is final, with the plan index and the result.
     * Calls are serialized (one at a time) but come from worker
     * threads, in completion order. The CLI journals from here;
     * resumed jobs (below) do not fire it.
     */
    std::function<void(std::size_t, const JobResult &)> jobDone;

    /**
     * Resume support: jobs whose plan index appears here are spliced
     * into the results verbatim and never re-executed. Not owned;
     * must outlive run(). Replayed journal rows are bitwise what a
     * fresh run would produce, so output stays byte-identical.
     */
    const std::map<std::size_t, JobResult> *completed = nullptr;
};

/**
 * Evaluate a point's energy metrics from its measurement-window
 * counters (zeroed/invalid when the scenario's energy spec is
 * disabled). Pure function of its arguments — the runner applies it
 * to every result after execution, so energy values cannot depend on
 * the execution mode (serial / batched / sharded).
 */
EnergyMetrics evaluateEnergy(const Scenario &s, const SimResult &r);

/** Plan executor; stateless between run() calls. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions opts = {});

    /**
     * Execute every job; results are indexed exactly like plan.jobs.
     * Exceptions thrown by a job (e.g. unknown topology id) are
     * rethrown on the calling thread after the pool drains.
     */
    std::vector<JobResult> run(const ExperimentPlan &plan) const;

    /** Execute one scenario on the calling thread. */
    static SimResult runScenario(const Scenario &s);

    /**
     * Execute one scenario, stepping it with `simShards` threads
     * when it is synthetic-traffic (workloads run serial). Bitwise
     * identical to runScenario(s) for any shard count.
     */
    static SimResult runScenario(const Scenario &s, int simShards);

    /** The resolved worker count run() will use. */
    int threadCount() const { return threads_; }

    /** The resolved lanes-per-batch cap (0 = batching disabled). */
    int batchLaneCount() const { return batchLanes_; }

    /** The resolved per-simulation shard count (1 = serial loop). */
    int simShardCount() const { return simShards_; }

    /** True when evaluations run in forked children. */
    bool isolated() const { return isolate_; }

    /** The resolved watchdog deadline in ms (0 = none). */
    long jobTimeoutMs() const { return timeoutMs_; }

    /** The resolved extra attempts per failed evaluation. */
    int retryCount() const { return retries_; }

  private:
    int threads_;
    int batchLanes_;
    int simShards_;
    bool isolate_;
    long timeoutMs_;
    int retries_;
    RunnerOptions opts_;

    JobResult runJob(const Job &job) const;
    ScenarioResult evalScenario(const Scenario &s,
                                JobResult &stats) const;
    void runBatched(const ExperimentPlan &plan,
                    const std::vector<bool> &done,
                    std::vector<JobResult> &results) const;
};

} // namespace snoc

#endif // SNOC_EXP_RUNNER_HH
