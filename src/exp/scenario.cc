#include "exp/scenario.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace snoc {

std::string
Scenario::describe() const
{
    if (!label.empty())
        return label;
    std::ostringstream oss;
    oss << topology << "/" << routerConfig << "/"
        << to_string(routing) << "/";
    switch (traffic.kind) {
      case TrafficSpec::Kind::Workload:
        oss << traffic.workload;
        break;
      case TrafficSpec::Kind::ClosedLoop:
        // Closed-loop points have no offered load; the window and
        // issue probability are what distinguish them.
        oss << "cl-" << to_string(traffic.pattern) << "/w"
            << traffic.closedLoop.window << "/p"
            << traffic.closedLoop.issueProb;
        break;
      case TrafficSpec::Kind::Collective:
        oss << "coll-" << to_string(traffic.collective.kind);
        if (traffic.collective.fanout > 0)
            oss << "/f" << traffic.collective.fanout;
        if (traffic.collective.rounds > 0)
            oss << "/r" << traffic.collective.rounds;
        break;
      case TrafficSpec::Kind::Synthetic:
        oss << to_string(traffic.pattern) << "@" << load;
        break;
    }
    if (faults.active())
        oss << "+faults";
    if (energy.enabled)
        oss << "+" << energy.tech;
    return oss.str();
}

Scenario
makeSyntheticScenario(const std::string &topology,
                      const std::string &routerConfig,
                      PatternKind pattern, double load,
                      int hopsPerCycle, RoutingMode routing,
                      const SimConfig &sim)
{
    Scenario s;
    s.topology = topology;
    s.routerConfig = routerConfig;
    s.traffic = TrafficSpec::synthetic(pattern);
    s.load = load;
    s.link.hopsPerCycle = hopsPerCycle;
    s.routing = routing;
    s.sim = sim;
    return s;
}

Scenario
makeTraceScenario(const std::string &topology,
                  const std::string &workload, Cycle cycles,
                  std::uint64_t seed)
{
    Scenario s;
    s.topology = topology;
    s.traffic = TrafficSpec::trace(workload, cycles);
    s.seed = seed;
    return s;
}

Scenario
makeClosedLoopScenario(const std::string &topology,
                       const std::string &routerConfig,
                       PatternKind pattern, const ClosedLoopSpec &spec,
                       RoutingMode routing, const SimConfig &sim)
{
    Scenario s;
    s.topology = topology;
    s.routerConfig = routerConfig;
    s.traffic = TrafficSpec::closedLoopOn(pattern, spec);
    s.routing = routing;
    s.sim = sim;
    return s;
}

Scenario
makeCollectiveScenario(const std::string &topology,
                       const std::string &routerConfig,
                       const CollectiveSpec &spec, RoutingMode routing,
                       const SimConfig &sim)
{
    Scenario s;
    s.topology = topology;
    s.routerConfig = routerConfig;
    s.traffic = TrafficSpec::collectiveOf(spec);
    s.routing = routing;
    s.sim = sim;
    return s;
}

void
applySweepValue(Scenario &s, double x)
{
    if (s.traffic.kind != TrafficSpec::Kind::ClosedLoop) {
        s.load = x;
        return;
    }
    switch (s.traffic.closedLoop.sweepAxis) {
      case ClosedLoopAxis::IssueProb:
        s.traffic.closedLoop.issueProb = std::clamp(x, 0.0, 1.0);
        break;
      case ClosedLoopAxis::Window:
        s.traffic.closedLoop.window =
            std::max(1, static_cast<int>(std::lround(x)));
        break;
    }
}

} // namespace snoc
