#include "exp/scenario.hh"

#include <sstream>

namespace snoc {

std::string
Scenario::describe() const
{
    if (!label.empty())
        return label;
    std::ostringstream oss;
    oss << topology << "/" << routerConfig << "/"
        << to_string(routing) << "/";
    if (traffic.kind == TrafficSpec::Kind::Workload)
        oss << traffic.workload;
    else
        oss << to_string(traffic.pattern) << "@" << load;
    if (faults.active())
        oss << "+faults";
    if (energy.enabled)
        oss << "+" << energy.tech;
    return oss.str();
}

Scenario
makeSyntheticScenario(const std::string &topology,
                      const std::string &routerConfig,
                      PatternKind pattern, double load,
                      int hopsPerCycle, RoutingMode routing,
                      const SimConfig &sim)
{
    Scenario s;
    s.topology = topology;
    s.routerConfig = routerConfig;
    s.traffic = TrafficSpec::synthetic(pattern);
    s.load = load;
    s.link.hopsPerCycle = hopsPerCycle;
    s.routing = routing;
    s.sim = sim;
    return s;
}

Scenario
makeTraceScenario(const std::string &topology,
                  const std::string &workload, Cycle cycles,
                  std::uint64_t seed)
{
    Scenario s;
    s.topology = topology;
    s.traffic = TrafficSpec::trace(workload, cycles);
    s.seed = seed;
    return s;
}

} // namespace snoc
