#include "exp/serialize.hh"

#include "common/log.hh"
#include "power/tech_params.hh"
#include "sim/router_config.hh"
#include "topo/table4.hh"
#include "trace/workloads.hh"

namespace snoc {

namespace {

/**
 * Strict object reader: members are taken by key; finish() rejects
 * whatever was not taken, with the full path of the stray member.
 */
class ObjectReader
{
  public:
    ObjectReader(const JsonValue &v, std::string path)
        : value_(v), path_(std::move(path)),
          consumed_(v.members(path_).size(), false)
    {
    }

    /** The member under `key` (marking it consumed), or nullptr. */
    const JsonValue *
    take(const char *key)
    {
        const auto &members = value_.members(path_);
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (members[i].first == key) {
                consumed_[i] = true;
                return &members[i].second;
            }
        }
        return nullptr;
    }

    /** Path of the member under `key` ("<path>.<key>"). */
    std::string
    sub(const char *key) const
    {
        return path_ + "." + key;
    }

    /** Reject members that were never taken (typo protection). */
    void
    finish() const
    {
        const auto &members = value_.members(path_);
        for (std::size_t i = 0; i < members.size(); ++i)
            if (!consumed_[i])
                fatal(path_, ": unknown member '", members[i].first,
                      "'");
    }

    const std::string &path() const { return path_; }

  private:
    const JsonValue &value_;
    std::string path_;
    std::vector<bool> consumed_;
};

std::string
elem(const std::string &path, std::size_t i)
{
    return path + "[" + std::to_string(i) + "]";
}

/** Re-raise a registry FatalError with the JSON path prepended. */
template <typename Fn>
auto
atPath(const std::string &path, Fn &&fn)
{
    try {
        return fn();
    } catch (const FatalError &e) {
        fatal(path, ": ", e.what());
    }
}

// --- fault-event kind names -------------------------------------------------

constexpr std::pair<FaultEvent::Kind, const char *> kEventKinds[] = {
    {FaultEvent::Kind::LinkDown, "link-down"},
    {FaultEvent::Kind::LinkUp, "link-up"},
    {FaultEvent::Kind::RouterDown, "router-down"},
    {FaultEvent::Kind::RouterUp, "router-up"},
};

const char *
eventKindName(FaultEvent::Kind kind)
{
    for (const auto &[k, name] : kEventKinds)
        if (k == kind)
            return name;
    SNOC_PANIC("unregistered fault-event kind");
}

FaultEvent::Kind
eventKindFromName(const std::string &name, const std::string &path)
{
    for (const auto &[k, n] : kEventKinds)
        if (name == n)
            return k;
    fatal(path, ": unknown fault-event kind '", name,
          "' (expected one of: link-down, link-up, router-down, "
          "router-up)");
}

} // namespace

// --- writers ----------------------------------------------------------------

namespace {

/** Non-default members of a closed-loop spec ("closedLoop"). */
JsonValue
closedLoopToJson(const ClosedLoopSpec &cl)
{
    const ClosedLoopSpec d;
    JsonValue v = JsonValue::object();
    if (cl.window != d.window)
        v.set("window", JsonValue::number(cl.window));
    if (cl.issueProb != d.issueProb)
        v.set("issueProb", JsonValue::number(cl.issueProb));
    if (cl.requestSizeFlits != d.requestSizeFlits)
        v.set("requestSizeFlits",
              JsonValue::number(cl.requestSizeFlits));
    if (cl.replySizeFlits != d.replySizeFlits)
        v.set("replySizeFlits", JsonValue::number(cl.replySizeFlits));
    if (cl.forwardSizeFlits != d.forwardSizeFlits)
        v.set("forwardSizeFlits",
              JsonValue::number(cl.forwardSizeFlits));
    if (cl.forwardFraction != d.forwardFraction)
        v.set("forwardFraction",
              JsonValue::number(cl.forwardFraction));
    if (cl.memoryDelay != d.memoryDelay)
        v.set("memoryDelay", JsonValue::number(cl.memoryDelay));
    if (cl.sweepAxis != d.sweepAxis)
        v.set("sweep", JsonValue::string(to_string(cl.sweepAxis)));
    if (cl.stopAfterRequests != d.stopAfterRequests)
        v.set("stopAfterRequests",
              JsonValue::number(cl.stopAfterRequests));
    return v;
}

/** Non-default members of a collective spec ("collective"). */
JsonValue
collectiveToJson(const CollectiveSpec &coll)
{
    const CollectiveSpec d;
    JsonValue v = JsonValue::object();
    if (coll.kind != d.kind)
        v.set("kind", JsonValue::string(to_string(coll.kind)));
    if (coll.root != d.root)
        v.set("root", JsonValue::number(coll.root));
    if (coll.fanout != d.fanout)
        v.set("fanout", JsonValue::number(coll.fanout));
    if (coll.rounds != d.rounds)
        v.set("rounds", JsonValue::number(coll.rounds));
    if (coll.phases != d.phases)
        v.set("phases", JsonValue::number(coll.phases));
    if (coll.gapCycles != d.gapCycles)
        v.set("gapCycles", JsonValue::number(coll.gapCycles));
    if (coll.payloadSizeFlits != d.payloadSizeFlits)
        v.set("payloadSizeFlits",
              JsonValue::number(coll.payloadSizeFlits));
    if (coll.controlSizeFlits != d.controlSizeFlits)
        v.set("controlSizeFlits",
              JsonValue::number(coll.controlSizeFlits));
    return v;
}

} // namespace

JsonValue
toJson(const TrafficSpec &traffic)
{
    JsonValue v = JsonValue::object();
    switch (traffic.kind) {
      case TrafficSpec::Kind::Workload:
        v.set("workload", JsonValue::string(traffic.workload));
        if (traffic.workloadCycles != TrafficSpec().workloadCycles)
            v.set("workloadCycles",
                  JsonValue::number(traffic.workloadCycles));
        break;
      case TrafficSpec::Kind::ClosedLoop:
        // Presence of the "closedLoop" member selects the kind; the
        // pattern still names the request-destination draw.
        v.set("pattern",
              JsonValue::string(to_string(traffic.pattern)));
        v.set("closedLoop", closedLoopToJson(traffic.closedLoop));
        break;
      case TrafficSpec::Kind::Collective:
        v.set("collective", collectiveToJson(traffic.collective));
        break;
      case TrafficSpec::Kind::Synthetic:
        v.set("pattern",
              JsonValue::string(to_string(traffic.pattern)));
        if (traffic.packetSizeFlits != TrafficSpec().packetSizeFlits)
            v.set("packetSizeFlits",
                  JsonValue::number(traffic.packetSizeFlits));
        break;
    }
    return v;
}

JsonValue
toJson(const FaultPlan &faults)
{
    const FaultPlan defaults;
    JsonValue v = JsonValue::object();
    if (!faults.events.empty()) {
        JsonValue events = JsonValue::array();
        for (const FaultEvent &e : faults.events) {
            JsonValue ev = JsonValue::object();
            ev.set("at", JsonValue::number(e.at));
            ev.set("kind", JsonValue::string(eventKindName(e.kind)));
            ev.set("a", JsonValue::number(e.a));
            if (e.b != -1)
                ev.set("b", JsonValue::number(e.b));
            events.push(std::move(ev));
        }
        v.set("events", std::move(events));
    }
    if (faults.randomLinkFraction != defaults.randomLinkFraction)
        v.set("randomLinkFraction",
              JsonValue::number(faults.randomLinkFraction));
    if (faults.randomFailAt != defaults.randomFailAt)
        v.set("randomFailAt", JsonValue::number(faults.randomFailAt));
    if (faults.faultSeed != defaults.faultSeed)
        v.set("faultSeed", JsonValue::number(faults.faultSeed));
    if (faults.armed != defaults.armed)
        v.set("armed", JsonValue::boolean(faults.armed));
    return v;
}

JsonValue
toJson(const EnergySpec &energy)
{
    // Presence of the member enables evaluation, so only the
    // non-default knobs appear; a defaults-only enabled spec
    // serializes as the empty object.
    const EnergySpec defaults;
    JsonValue v = JsonValue::object();
    if (energy.tech != defaults.tech)
        v.set("tech", JsonValue::string(energy.tech));
    if (energy.flitBits != defaults.flitBits)
        v.set("flitBits", JsonValue::number(energy.flitBits));
    return v;
}

JsonValue
toJson(const SimConfig &sim)
{
    const SimConfig defaults;
    JsonValue v = JsonValue::object();
    if (sim.warmupCycles != defaults.warmupCycles)
        v.set("warmupCycles", JsonValue::number(sim.warmupCycles));
    if (sim.measureCycles != defaults.measureCycles)
        v.set("measureCycles", JsonValue::number(sim.measureCycles));
    if (sim.drainCycleLimit != defaults.drainCycleLimit)
        v.set("drainCycleLimit",
              JsonValue::number(sim.drainCycleLimit));
    if (sim.drain != defaults.drain)
        v.set("drain", JsonValue::boolean(sim.drain));
    return v;
}

JsonValue
toJson(const LinkConfig &link)
{
    JsonValue v = JsonValue::object();
    if (link.hopsPerCycle != LinkConfig().hopsPerCycle)
        v.set("hopsPerCycle", JsonValue::number(link.hopsPerCycle));
    return v;
}

JsonValue
toJson(const Scenario &scenario)
{
    const Scenario defaults;
    JsonValue v = JsonValue::object();
    if (!scenario.label.empty())
        v.set("label", JsonValue::string(scenario.label));
    v.set("topology", JsonValue::string(scenario.topology));
    if (scenario.routerConfig != defaults.routerConfig)
        v.set("routerConfig",
              JsonValue::string(scenario.routerConfig));
    if (!(scenario.link == defaults.link))
        v.set("link", toJson(scenario.link));
    if (scenario.routing != defaults.routing)
        v.set("routing",
              JsonValue::string(to_string(scenario.routing)));
    if (!(scenario.traffic == defaults.traffic))
        v.set("traffic", toJson(scenario.traffic));
    if (scenario.load != defaults.load)
        v.set("load", JsonValue::number(scenario.load));
    if (scenario.seed != defaults.seed)
        v.set("seed", JsonValue::number(scenario.seed));
    if (scenario.routingSeed != defaults.routingSeed)
        v.set("routingSeed", JsonValue::number(scenario.routingSeed));
    if (!(scenario.sim == defaults.sim))
        v.set("sim", toJson(scenario.sim));
    if (!(scenario.faults == defaults.faults))
        v.set("faults", toJson(scenario.faults));
    if (scenario.energy.enabled)
        v.set("energy", toJson(scenario.energy));
    return v;
}

JsonValue
toJson(const Job &job)
{
    JsonValue v = JsonValue::object();
    v.set("scenario", toJson(job.scenario));
    if (job.kind == Job::Kind::Sweep) {
        JsonValue sweep = JsonValue::object();
        JsonValue loads = JsonValue::array();
        for (double load : job.loads)
            loads.push(JsonValue::number(load));
        sweep.set("loads", std::move(loads));
        if (!job.stopAtSaturation)
            sweep.set("stopAtSaturation", JsonValue::boolean(false));
        if (job.saturationFactor != Job().saturationFactor)
            sweep.set("saturationFactor",
                      JsonValue::number(job.saturationFactor));
        v.set("sweep", std::move(sweep));
    } else if (job.kind == Job::Kind::Saturation) {
        const SaturationSpec defaults;
        JsonValue sat = JsonValue::object();
        if (job.saturation.loLoad != defaults.loLoad)
            sat.set("loLoad",
                    JsonValue::number(job.saturation.loLoad));
        if (job.saturation.hiLoad != defaults.hiLoad)
            sat.set("hiLoad",
                    JsonValue::number(job.saturation.hiLoad));
        if (job.saturation.tolerance != defaults.tolerance)
            sat.set("tolerance",
                    JsonValue::number(job.saturation.tolerance));
        if (job.saturation.maxProbes != defaults.maxProbes)
            sat.set("maxProbes",
                    JsonValue::number(job.saturation.maxProbes));
        v.set("saturation", std::move(sat));
    }
    return v;
}

JsonValue
toJson(const ExperimentPlan &plan)
{
    JsonValue v = JsonValue::object();
    if (!plan.name.empty())
        v.set("name", JsonValue::string(plan.name));
    JsonValue jobs = JsonValue::array();
    for (const Job &job : plan.jobs)
        jobs.push(toJson(job));
    v.set("jobs", std::move(jobs));
    return v;
}

// --- readers ----------------------------------------------------------------

namespace {

ClosedLoopSpec
closedLoopFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    ClosedLoopSpec cl;
    if (const JsonValue *m = obj.take("window")) {
        cl.window = m->asInt(obj.sub("window"));
        if (cl.window < 1)
            fatal(obj.sub("window"), ": must be at least 1");
    }
    if (const JsonValue *m = obj.take("issueProb")) {
        cl.issueProb = m->asDouble(obj.sub("issueProb"));
        if (cl.issueProb < 0.0 || cl.issueProb > 1.0)
            fatal(obj.sub("issueProb"), ": must be within [0, 1]");
    }
    if (const JsonValue *m = obj.take("requestSizeFlits")) {
        cl.requestSizeFlits = m->asInt(obj.sub("requestSizeFlits"));
        if (cl.requestSizeFlits < 1)
            fatal(obj.sub("requestSizeFlits"),
                  ": must be at least 1 flit");
    }
    if (const JsonValue *m = obj.take("replySizeFlits")) {
        cl.replySizeFlits = m->asInt(obj.sub("replySizeFlits"));
        if (cl.replySizeFlits < 1)
            fatal(obj.sub("replySizeFlits"),
                  ": must be at least 1 flit");
    }
    if (const JsonValue *m = obj.take("forwardSizeFlits")) {
        cl.forwardSizeFlits = m->asInt(obj.sub("forwardSizeFlits"));
        if (cl.forwardSizeFlits < 1)
            fatal(obj.sub("forwardSizeFlits"),
                  ": must be at least 1 flit");
    }
    if (const JsonValue *m = obj.take("forwardFraction")) {
        cl.forwardFraction = m->asDouble(obj.sub("forwardFraction"));
        if (cl.forwardFraction < 0.0 || cl.forwardFraction > 1.0)
            fatal(obj.sub("forwardFraction"),
                  ": must be within [0, 1]");
    }
    if (const JsonValue *m = obj.take("memoryDelay")) {
        cl.memoryDelay = m->asU64(obj.sub("memoryDelay"));
        if (cl.memoryDelay < 1)
            fatal(obj.sub("memoryDelay"), ": must be at least 1");
    }
    if (const JsonValue *m = obj.take("sweep"))
        cl.sweepAxis = atPath(obj.sub("sweep"), [&] {
            return closedLoopAxisFromName(
                m->asString(obj.sub("sweep")));
        });
    if (const JsonValue *m = obj.take("stopAfterRequests"))
        cl.stopAfterRequests = m->asU64(obj.sub("stopAfterRequests"));
    obj.finish();
    return cl;
}

CollectiveSpec
collectiveFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    CollectiveSpec coll;
    if (const JsonValue *m = obj.take("kind"))
        coll.kind = atPath(obj.sub("kind"), [&] {
            return collectiveKindFromName(
                m->asString(obj.sub("kind")));
        });
    if (const JsonValue *m = obj.take("root")) {
        coll.root = m->asInt(obj.sub("root"));
        if (coll.root < 0)
            fatal(obj.sub("root"), ": must be non-negative");
    }
    if (const JsonValue *m = obj.take("fanout")) {
        coll.fanout = m->asInt(obj.sub("fanout"));
        if (coll.fanout < 0)
            fatal(obj.sub("fanout"), ": must be non-negative");
    }
    if (const JsonValue *m = obj.take("rounds")) {
        coll.rounds = m->asInt(obj.sub("rounds"));
        if (coll.rounds < 0)
            fatal(obj.sub("rounds"), ": must be non-negative");
    }
    if (const JsonValue *m = obj.take("phases")) {
        coll.phases = m->asInt(obj.sub("phases"));
        if (coll.phases < 0)
            fatal(obj.sub("phases"), ": must be non-negative");
    }
    if (const JsonValue *m = obj.take("gapCycles"))
        coll.gapCycles = m->asU64(obj.sub("gapCycles"));
    if (const JsonValue *m = obj.take("payloadSizeFlits")) {
        coll.payloadSizeFlits =
            m->asInt(obj.sub("payloadSizeFlits"));
        if (coll.payloadSizeFlits < 1)
            fatal(obj.sub("payloadSizeFlits"),
                  ": must be at least 1 flit");
    }
    if (const JsonValue *m = obj.take("controlSizeFlits")) {
        coll.controlSizeFlits =
            m->asInt(obj.sub("controlSizeFlits"));
        if (coll.controlSizeFlits < 1)
            fatal(obj.sub("controlSizeFlits"),
                  ": must be at least 1 flit");
    }
    obj.finish();
    return coll;
}

} // namespace

TrafficSpec
trafficSpecFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    TrafficSpec traffic;
    const JsonValue *workload = obj.take("workload");
    const JsonValue *pattern = obj.take("pattern");
    const JsonValue *closedLoop = obj.take("closedLoop");
    const JsonValue *collective = obj.take("collective");
    if (workload && pattern)
        fatal(path, ": 'workload' and 'pattern' are exclusive");
    if ((workload && (closedLoop || collective)) ||
        (closedLoop && collective))
        fatal(path, ": 'workload', 'closedLoop' and 'collective' "
                    "are exclusive");
    if (collective && pattern)
        fatal(path, ": 'collective' does not draw destinations from "
                    "a 'pattern'");
    if (closedLoop) {
        traffic.kind = TrafficSpec::Kind::ClosedLoop;
        if (pattern)
            traffic.pattern = atPath(obj.sub("pattern"), [&] {
                return patternFromName(
                    pattern->asString(obj.sub("pattern")));
            });
        traffic.closedLoop =
            closedLoopFromJson(*closedLoop, obj.sub("closedLoop"));
        obj.finish();
        return traffic;
    }
    if (collective) {
        traffic.kind = TrafficSpec::Kind::Collective;
        traffic.collective =
            collectiveFromJson(*collective, obj.sub("collective"));
        obj.finish();
        return traffic;
    }
    if (workload) {
        traffic.kind = TrafficSpec::Kind::Workload;
        traffic.workload = workload->asString(obj.sub("workload"));
        atPath(obj.sub("workload"), [&] {
            workloadByName(traffic.workload);
            return 0;
        });
        if (const JsonValue *m = obj.take("workloadCycles"))
            traffic.workloadCycles =
                m->asU64(obj.sub("workloadCycles"));
    } else {
        if (pattern)
            traffic.pattern = atPath(obj.sub("pattern"), [&] {
                return patternFromName(
                    pattern->asString(obj.sub("pattern")));
            });
        if (const JsonValue *m = obj.take("packetSizeFlits")) {
            traffic.packetSizeFlits =
                m->asInt(obj.sub("packetSizeFlits"));
            if (traffic.packetSizeFlits < 1)
                fatal(obj.sub("packetSizeFlits"),
                      ": must be at least 1 flit");
        }
    }
    obj.finish();
    return traffic;
}

FaultPlan
faultPlanFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    FaultPlan faults;
    if (const JsonValue *events = obj.take("events")) {
        const std::string eventsPath = obj.sub("events");
        std::size_t i = 0;
        for (const JsonValue &ev : events->items(eventsPath)) {
            const std::string evPath = elem(eventsPath, i++);
            ObjectReader evObj(ev, evPath);
            FaultEvent event;
            if (const JsonValue *m = evObj.take("at"))
                event.at = m->asU64(evObj.sub("at"));
            const JsonValue *kind = evObj.take("kind");
            if (!kind)
                fatal(evPath, ": missing 'kind'");
            event.kind = eventKindFromName(
                kind->asString(evObj.sub("kind")), evObj.sub("kind"));
            const JsonValue *a = evObj.take("a");
            if (!a)
                fatal(evPath, ": missing 'a' (router id)");
            event.a = a->asInt(evObj.sub("a"));
            if (const JsonValue *b = evObj.take("b"))
                event.b = b->asInt(evObj.sub("b"));
            bool isLink = event.kind == FaultEvent::Kind::LinkDown ||
                          event.kind == FaultEvent::Kind::LinkUp;
            if (isLink && event.b < 0)
                fatal(evPath,
                      ": link events need both endpoints 'a' and "
                      "'b'");
            evObj.finish();
            faults.events.push_back(event);
        }
    }
    if (const JsonValue *m = obj.take("randomLinkFraction")) {
        faults.randomLinkFraction =
            m->asDouble(obj.sub("randomLinkFraction"));
        if (faults.randomLinkFraction < 0.0 ||
            faults.randomLinkFraction > 1.0)
            fatal(obj.sub("randomLinkFraction"),
                  ": must be within [0, 1]");
    }
    if (const JsonValue *m = obj.take("randomFailAt"))
        faults.randomFailAt = m->asU64(obj.sub("randomFailAt"));
    if (const JsonValue *m = obj.take("faultSeed"))
        faults.faultSeed = m->asU64(obj.sub("faultSeed"));
    if (const JsonValue *m = obj.take("armed"))
        faults.armed = m->asBool(obj.sub("armed"));
    obj.finish();
    return faults;
}

EnergySpec
energySpecFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    EnergySpec energy;
    energy.enabled = true; // presence of the member enables it
    if (const JsonValue *m = obj.take("tech")) {
        energy.tech = m->asString(obj.sub("tech"));
        atPath(obj.sub("tech"), [&] {
            techCornerByName(energy.tech);
            return 0;
        });
    }
    if (const JsonValue *m = obj.take("flitBits")) {
        energy.flitBits = m->asInt(obj.sub("flitBits"));
        if (energy.flitBits < 1)
            fatal(obj.sub("flitBits"), ": must be at least 1 bit");
    }
    obj.finish();
    return energy;
}

SimConfig
simConfigFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    SimConfig sim;
    if (const JsonValue *m = obj.take("warmupCycles"))
        sim.warmupCycles = m->asU64(obj.sub("warmupCycles"));
    if (const JsonValue *m = obj.take("measureCycles"))
        sim.measureCycles = m->asU64(obj.sub("measureCycles"));
    if (const JsonValue *m = obj.take("drainCycleLimit"))
        sim.drainCycleLimit = m->asU64(obj.sub("drainCycleLimit"));
    if (const JsonValue *m = obj.take("drain"))
        sim.drain = m->asBool(obj.sub("drain"));
    obj.finish();
    return sim;
}

LinkConfig
linkConfigFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    LinkConfig link;
    if (const JsonValue *m = obj.take("hopsPerCycle")) {
        link.hopsPerCycle = m->asInt(obj.sub("hopsPerCycle"));
        if (link.hopsPerCycle < 1)
            fatal(obj.sub("hopsPerCycle"), ": must be at least 1");
    }
    obj.finish();
    return link;
}

Scenario
scenarioFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    Scenario s;
    if (const JsonValue *m = obj.take("label"))
        s.label = m->asString(obj.sub("label"));
    const JsonValue *topology = obj.take("topology");
    if (!topology)
        fatal(path, ": missing 'topology'");
    s.topology = topology->asString(obj.sub("topology"));
    if (!isNamedTopologyId(s.topology))
        fatal(obj.sub("topology"), ": unknown topology id '",
              s.topology, "'");
    if (const JsonValue *m = obj.take("routerConfig")) {
        s.routerConfig = m->asString(obj.sub("routerConfig"));
        atPath(obj.sub("routerConfig"), [&] {
            RouterConfig::named(s.routerConfig);
            return 0;
        });
    }
    if (const JsonValue *m = obj.take("link"))
        s.link = linkConfigFromJson(*m, obj.sub("link"));
    if (const JsonValue *m = obj.take("routing"))
        s.routing = atPath(obj.sub("routing"), [&] {
            return routingModeFromName(
                m->asString(obj.sub("routing")));
        });
    if (const JsonValue *m = obj.take("traffic"))
        s.traffic = trafficSpecFromJson(*m, obj.sub("traffic"));
    if (const JsonValue *m = obj.take("load")) {
        s.load = m->asDouble(obj.sub("load"));
        if (s.load < 0.0)
            fatal(obj.sub("load"), ": must be non-negative");
    }
    if (const JsonValue *m = obj.take("seed"))
        s.seed = m->asU64(obj.sub("seed"));
    if (const JsonValue *m = obj.take("routingSeed"))
        s.routingSeed = m->asU64(obj.sub("routingSeed"));
    if (const JsonValue *m = obj.take("sim"))
        s.sim = simConfigFromJson(*m, obj.sub("sim"));
    if (const JsonValue *m = obj.take("faults"))
        s.faults = faultPlanFromJson(*m, obj.sub("faults"));
    if (const JsonValue *m = obj.take("energy"))
        s.energy = energySpecFromJson(*m, obj.sub("energy"));
    obj.finish();
    return s;
}

Job
jobFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    Job job;
    const JsonValue *scenario = obj.take("scenario");
    if (!scenario)
        fatal(path, ": missing 'scenario'");
    job.scenario = scenarioFromJson(*scenario, obj.sub("scenario"));

    const JsonValue *sweep = obj.take("sweep");
    const JsonValue *saturation = obj.take("saturation");
    if (sweep && saturation)
        fatal(path, ": 'sweep' and 'saturation' are exclusive");

    if (sweep) {
        job.kind = Job::Kind::Sweep;
        const std::string sweepPath = obj.sub("sweep");
        ObjectReader sweepObj(*sweep, sweepPath);
        const JsonValue *loads = sweepObj.take("loads");
        if (!loads)
            fatal(sweepPath, ": missing 'loads'");
        const std::string loadsPath = sweepObj.sub("loads");
        std::size_t i = 0;
        for (const JsonValue &load : loads->items(loadsPath))
            job.loads.push_back(
                load.asDouble(elem(loadsPath, i++)));
        if (job.loads.empty())
            fatal(loadsPath, ": needs at least one load");
        if (const JsonValue *m = sweepObj.take("stopAtSaturation"))
            job.stopAtSaturation =
                m->asBool(sweepObj.sub("stopAtSaturation"));
        if (const JsonValue *m = sweepObj.take("saturationFactor"))
            job.saturationFactor =
                m->asDouble(sweepObj.sub("saturationFactor"));
        sweepObj.finish();
    } else if (saturation) {
        job.kind = Job::Kind::Saturation;
        const std::string satPath = obj.sub("saturation");
        ObjectReader satObj(*saturation, satPath);
        if (const JsonValue *m = satObj.take("loLoad"))
            job.saturation.loLoad =
                m->asDouble(satObj.sub("loLoad"));
        if (const JsonValue *m = satObj.take("hiLoad"))
            job.saturation.hiLoad =
                m->asDouble(satObj.sub("hiLoad"));
        if (const JsonValue *m = satObj.take("tolerance"))
            job.saturation.tolerance =
                m->asDouble(satObj.sub("tolerance"));
        if (const JsonValue *m = satObj.take("maxProbes"))
            job.saturation.maxProbes =
                m->asInt(satObj.sub("maxProbes"));
        satObj.finish();
    }
    obj.finish();
    return job;
}

ExperimentPlan
planFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    ExperimentPlan plan;
    if (const JsonValue *m = obj.take("name"))
        plan.name = m->asString(obj.sub("name"));
    const JsonValue *jobs = obj.take("jobs");
    if (!jobs)
        fatal(path, ": missing 'jobs'");
    const std::string jobsPath = obj.sub("jobs");
    std::size_t i = 0;
    for (const JsonValue &job : jobs->items(jobsPath)) {
        const std::string jobPath = elem(jobsPath, i++);
        plan.jobs.push_back(jobFromJson(job, jobPath));
    }
    obj.finish();
    return plan;
}

// --- result rows (store / journal payloads) ---------------------------------

namespace {

constexpr std::pair<Job::Kind, const char *> kJobKinds[] = {
    {Job::Kind::Single, "single"},
    {Job::Kind::Sweep, "sweep"},
    {Job::Kind::Saturation, "saturation"},
};

const char *
jobKindName(Job::Kind kind)
{
    for (const auto &[k, name] : kJobKinds)
        if (k == kind)
            return name;
    SNOC_PANIC("unregistered job kind");
}

Job::Kind
jobKindFromName(const std::string &name, const std::string &path)
{
    for (const auto &[k, n] : kJobKinds)
        if (name == n)
            return k;
    fatal(path, ": unknown job kind '", name,
          "' (expected single, sweep or saturation)");
}

/** (name, member pointer) table: writer and reader stay in lockstep. */
constexpr std::pair<const char *, std::uint64_t SimCounters::*>
    kCounterFields[] = {
        {"bufferWrites", &SimCounters::bufferWrites},
        {"bufferReads", &SimCounters::bufferReads},
        {"cbWrites", &SimCounters::cbWrites},
        {"cbReads", &SimCounters::cbReads},
        {"crossbarTraversals", &SimCounters::crossbarTraversals},
        {"linkFlitHops", &SimCounters::linkFlitHops},
        {"flitsInjected", &SimCounters::flitsInjected},
        {"flitsDelivered", &SimCounters::flitsDelivered},
        {"packetsInjected", &SimCounters::packetsInjected},
        {"packetsDelivered", &SimCounters::packetsDelivered},
        {"faultEvents", &SimCounters::faultEvents},
        {"flitsDropped", &SimCounters::flitsDropped},
        {"packetsDropped", &SimCounters::packetsDropped},
        {"packetsUnroutable", &SimCounters::packetsUnroutable},
        {"packetsRefused", &SimCounters::packetsRefused},
        {"packetsRerouted", &SimCounters::packetsRerouted},
        {"clRequestsIssued", &SimCounters::clRequestsIssued},
        {"clRepliesMatched", &SimCounters::clRepliesMatched},
        {"clReqLatencySum", &SimCounters::clReqLatencySum},
        {"clWindowOccupancy", &SimCounters::clWindowOccupancy},
        {"clStallNodeCycles", &SimCounters::clStallNodeCycles},
        {"clSlotsPurged", &SimCounters::clSlotsPurged},
        {"clPhasesCompleted", &SimCounters::clPhasesCompleted},
};

} // namespace

JsonValue
toJson(const SimCounters &counters)
{
    // Zero counters are omitted (missing == 0 on the way back), so
    // fault-free open-loop rows stay compact.
    JsonValue v = JsonValue::object();
    for (const auto &[name, member] : kCounterFields)
        if (counters.*member != 0)
            v.set(name, JsonValue::number(counters.*member));
    return v;
}

SimCounters
simCountersFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    SimCounters counters;
    for (const auto &[name, member] : kCounterFields)
        if (const JsonValue *m = obj.take(name))
            counters.*member = m->asU64(obj.sub(name));
    obj.finish();
    return counters;
}

JsonValue
toJson(const SimResult &result)
{
    const SimResult d;
    JsonValue v = JsonValue::object();
    if (result.avgPacketLatency != d.avgPacketLatency)
        v.set("avgPacketLatency",
              JsonValue::number(result.avgPacketLatency));
    if (result.avgNetworkLatency != d.avgNetworkLatency)
        v.set("avgNetworkLatency",
              JsonValue::number(result.avgNetworkLatency));
    if (result.p99PacketLatencyBound != d.p99PacketLatencyBound)
        v.set("p99PacketLatencyBound",
              JsonValue::number(result.p99PacketLatencyBound));
    if (result.avgHops != d.avgHops)
        v.set("avgHops", JsonValue::number(result.avgHops));
    if (result.throughput != d.throughput)
        v.set("throughput", JsonValue::number(result.throughput));
    if (result.offeredLoad != d.offeredLoad)
        v.set("offeredLoad", JsonValue::number(result.offeredLoad));
    if (result.packetsDelivered != d.packetsDelivered)
        v.set("packetsDelivered",
              JsonValue::number(result.packetsDelivered));
    if (result.stable != d.stable)
        v.set("stable", JsonValue::boolean(result.stable));
    if (!(result.counters == d.counters))
        v.set("counters", toJson(result.counters));
    if (result.cyclesRun != d.cyclesRun)
        v.set("cyclesRun", JsonValue::number(
                               std::uint64_t(result.cyclesRun)));
    return v;
}

SimResult
simResultFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    SimResult result;
    if (const JsonValue *m = obj.take("avgPacketLatency"))
        result.avgPacketLatency =
            m->asDouble(obj.sub("avgPacketLatency"));
    if (const JsonValue *m = obj.take("avgNetworkLatency"))
        result.avgNetworkLatency =
            m->asDouble(obj.sub("avgNetworkLatency"));
    if (const JsonValue *m = obj.take("p99PacketLatencyBound"))
        result.p99PacketLatencyBound =
            m->asDouble(obj.sub("p99PacketLatencyBound"));
    if (const JsonValue *m = obj.take("avgHops"))
        result.avgHops = m->asDouble(obj.sub("avgHops"));
    if (const JsonValue *m = obj.take("throughput"))
        result.throughput = m->asDouble(obj.sub("throughput"));
    if (const JsonValue *m = obj.take("offeredLoad"))
        result.offeredLoad = m->asDouble(obj.sub("offeredLoad"));
    if (const JsonValue *m = obj.take("packetsDelivered"))
        result.packetsDelivered =
            m->asU64(obj.sub("packetsDelivered"));
    if (const JsonValue *m = obj.take("stable"))
        result.stable = m->asBool(obj.sub("stable"));
    if (const JsonValue *m = obj.take("counters"))
        result.counters =
            simCountersFromJson(*m, obj.sub("counters"));
    if (const JsonValue *m = obj.take("cyclesRun"))
        result.cyclesRun =
            static_cast<Cycle>(m->asU64(obj.sub("cyclesRun")));
    obj.finish();
    return result;
}

JsonValue
toJson(const ScenarioResult &point)
{
    JsonValue v = JsonValue::object();
    v.set("scenario", toJson(point.scenario));
    v.set("sim", toJson(point.sim));
    if (!point.ok)
        v.set("ok", JsonValue::boolean(false));
    if (!point.error.empty())
        v.set("error", JsonValue::string(point.error));
    return v;
}

ScenarioResult
scenarioResultFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    ScenarioResult point;
    const JsonValue *scenario = obj.take("scenario");
    if (!scenario)
        fatal(path, ": missing 'scenario'");
    point.scenario = scenarioFromJson(*scenario, obj.sub("scenario"));
    const JsonValue *sim = obj.take("sim");
    if (!sim)
        fatal(path, ": missing 'sim'");
    point.sim = simResultFromJson(*sim, obj.sub("sim"));
    if (const JsonValue *m = obj.take("ok"))
        point.ok = m->asBool(obj.sub("ok"));
    if (const JsonValue *m = obj.take("error"))
        point.error = m->asString(obj.sub("error"));
    obj.finish();
    return point;
}

JsonValue
toJson(const JobResult &result)
{
    const JobResult d;
    JsonValue v = JsonValue::object();
    v.set("kind", JsonValue::string(jobKindName(result.kind)));
    if (result.status != JobStatus::Ok)
        v.set("status", JsonValue::string("failed"));
    if (!result.error.empty())
        v.set("error", JsonValue::string(result.error));
    if (result.retries != d.retries)
        v.set("retries", JsonValue::number(result.retries));
    if (result.cacheHits != d.cacheHits)
        v.set("cacheHits", JsonValue::number(result.cacheHits));
    if (result.cacheMisses != d.cacheMisses)
        v.set("cacheMisses", JsonValue::number(result.cacheMisses));
    if (result.wallMs != d.wallMs)
        v.set("wallMs", JsonValue::number(result.wallMs));
    if (result.saturationLoad != d.saturationLoad)
        v.set("saturationLoad",
              JsonValue::number(result.saturationLoad));
    if (result.bestThroughput != d.bestThroughput)
        v.set("bestThroughput",
              JsonValue::number(result.bestThroughput));
    JsonValue points = JsonValue::array();
    for (const ScenarioResult &p : result.points)
        points.push(toJson(p));
    v.set("points", std::move(points));
    return v;
}

JobResult
jobResultFromJson(const JsonValue &v, const std::string &path)
{
    ObjectReader obj(v, path);
    JobResult result;
    const JsonValue *kind = obj.take("kind");
    if (!kind)
        fatal(path, ": missing 'kind'");
    result.kind =
        jobKindFromName(kind->asString(obj.sub("kind")),
                        obj.sub("kind"));
    if (const JsonValue *m = obj.take("status")) {
        const std::string &s = m->asString(obj.sub("status"));
        if (s == "failed")
            result.status = JobStatus::Failed;
        else if (s != "ok")
            fatal(obj.sub("status"), ": unknown status '", s, "'");
    }
    if (const JsonValue *m = obj.take("error"))
        result.error = m->asString(obj.sub("error"));
    if (const JsonValue *m = obj.take("retries"))
        result.retries = m->asInt(obj.sub("retries"));
    if (const JsonValue *m = obj.take("cacheHits"))
        result.cacheHits = m->asInt(obj.sub("cacheHits"));
    if (const JsonValue *m = obj.take("cacheMisses"))
        result.cacheMisses = m->asInt(obj.sub("cacheMisses"));
    if (const JsonValue *m = obj.take("wallMs"))
        result.wallMs = m->asDouble(obj.sub("wallMs"));
    if (const JsonValue *m = obj.take("saturationLoad"))
        result.saturationLoad =
            m->asDouble(obj.sub("saturationLoad"));
    if (const JsonValue *m = obj.take("bestThroughput"))
        result.bestThroughput =
            m->asDouble(obj.sub("bestThroughput"));
    const JsonValue *points = obj.take("points");
    if (!points)
        fatal(path, ": missing 'points'");
    const std::string pointsPath = obj.sub("points");
    std::size_t i = 0;
    for (const JsonValue &p : points->items(pointsPath))
        result.points.push_back(
            scenarioResultFromJson(p, elem(pointsPath, i++)));
    obj.finish();
    return result;
}

// --- text round trip --------------------------------------------------------

std::string
serializeScenario(const Scenario &scenario)
{
    return toJson(scenario).dump(2) + "\n";
}

std::string
serializePlan(const ExperimentPlan &plan)
{
    return toJson(plan).dump(2) + "\n";
}

Scenario
parseScenario(const std::string &text, const std::string &origin)
{
    return scenarioFromJson(JsonValue::parse(text, origin));
}

ExperimentPlan
parsePlan(const std::string &text, const std::string &origin)
{
    return planFromJson(JsonValue::parse(text, origin));
}

} // namespace snoc
