/**
 * @file
 * ResultSink: structured emission of campaign results.
 *
 * Bench binaries used to format tables straight to std::cout; the
 * sink interface keeps the same table-building call shape
 * (beginTable / addRow / endTable) but decouples formatting so the
 * identical campaign can stream an aligned text table (the existing
 * TextTable renderer), CSV for plotting, or JSON for downstream
 * tooling. Select with makeResultSink() / the SNOC_BENCH_FORMAT
 * environment knob in bench_util.hh.
 */

#ifndef SNOC_EXP_RESULT_SINK_HH
#define SNOC_EXP_RESULT_SINK_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace snoc {

/** Streaming consumer of titled result tables. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Open a table; a non-empty title labels the section. */
    virtual void beginTable(const std::string &title,
                            const std::vector<std::string> &columns) = 0;

    /** Append one row; arity must match the open table's columns. */
    virtual void addRow(const std::vector<std::string> &cells) = 0;

    /** Close the current table (flushes formats that buffer). */
    virtual void endTable() = 0;

    /**
     * Free-form commentary (paper cross-checks, notes). Text sinks
     * print it; machine-readable sinks drop it.
     */
    virtual void note(const std::string &) {}
};

/** Aligned text tables via TextTable, with banner-style titles. */
class TableSink : public ResultSink
{
  public:
    explicit TableSink(std::ostream &os);
    ~TableSink() override;
    void beginTable(const std::string &title,
                    const std::vector<std::string> &columns) override;
    void addRow(const std::vector<std::string> &cells) override;
    void endTable() override;
    void note(const std::string &text) override;

  private:
    struct Impl;
    std::ostream &os_;
    std::unique_ptr<Impl> impl_;
};

/** RFC-4180-ish CSV; tables separated by "# title" comment lines. */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(std::ostream &os);
    void beginTable(const std::string &title,
                    const std::vector<std::string> &columns) override;
    void addRow(const std::vector<std::string> &cells) override;
    void endTable() override;

  private:
    std::ostream &os_;
    bool first_ = true;
};

/**
 * JSON array of {"title", "columns", "rows": [{col: value}]}.
 * Cells that parse as finite numbers are emitted as JSON numbers.
 * finish() closes the array; the destructor calls it if needed.
 */
class JsonSink : public ResultSink
{
  public:
    explicit JsonSink(std::ostream &os);
    ~JsonSink() override;
    void beginTable(const std::string &title,
                    const std::vector<std::string> &columns) override;
    void addRow(const std::vector<std::string> &cells) override;
    void endTable() override;
    void finish();

  private:
    std::ostream &os_;
    std::vector<std::string> columns_;
    bool anyTable_ = false;
    bool anyRow_ = false;
    bool finished_ = false;
};

/** Fan a table stream out to several sinks (e.g. table + CSV file). */
class TeeSink : public ResultSink
{
  public:
    explicit TeeSink(std::vector<ResultSink *> sinks);
    void beginTable(const std::string &title,
                    const std::vector<std::string> &columns) override;
    void addRow(const std::vector<std::string> &cells) override;
    void endTable() override;
    void note(const std::string &text) override;

  private:
    std::vector<ResultSink *> sinks_;
};

/**
 * Build a sink by format name: "table", "csv" or "json".
 * @throws FatalError listing the registered formats when unknown.
 */
std::unique_ptr<ResultSink> makeResultSink(const std::string &format,
                                           std::ostream &os);

/** All registered format names (`snoc list formats`). */
const std::vector<std::string> &resultSinkFormats();

} // namespace snoc

#endif // SNOC_EXP_RESULT_SINK_HH
