#include "exp/runner.hh"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "common/env.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "exp/result_store.hh"
#include "exp/serialize.hh"
#include "power/power_model.hh"
#include "sim/batch.hh"
#include "sim/shard.hh"
#include "topo/topology_cache.hh"
#include "trace/trace.hh"
#include "traffic/synthetic.hh"
#include "workload/closed_loop.hh"
#include "workload/collective.hh"

namespace snoc {

namespace {

int
resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    if (int n = envInt(kEnvExpThreads, 0); n > 0)
        return n;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

int
resolveBatchLanes(int requested)
{
    int lanes = requested;
    if (lanes < 0) {
        std::string raw = envRaw(kEnvExpBatch);
        if (raw.empty() || raw == "1")
            lanes = 8; // on by default: results are identical
        else if (raw == "off" || raw == "0")
            lanes = 0;
        else {
            int n = std::atoi(raw.c_str());
            lanes = n >= 2 ? n : 8;
        }
    }
    if (lanes <= 1)
        return 0;
    return std::min(lanes, BatchedNetwork::kMaxLanes);
}

constexpr int kMaxShards = 64;

int
resolveSimShards(int requested)
{
    int shards = requested;
    if (shards < 0) {
        std::string raw = envRaw(kEnvSimShards);
        if (raw.empty() || raw == "off" || raw == "0" || raw == "1")
            shards = 1; // serial loop by default
        else {
            int n = std::atoi(raw.c_str());
            shards = n >= 2 ? n : 1;
        }
    }
    if (shards <= 1)
        return 1;
    return std::min(shards, kMaxShards);
}

bool
resolveIsolate(int requested)
{
    if (requested >= 0)
        return requested > 0;
    std::string raw = envRaw(kEnvExpIsolate);
    return raw == "fork" || raw == "1" || raw == "on";
}

long
resolveTimeoutMs(long requested)
{
    if (requested >= 0)
        return requested;
    // The env knob is in whole seconds — campaigns time out on the
    // scale of stuck jobs, not scheduler jitter.
    int seconds = envInt(kEnvExpJobTimeout, 0);
    return seconds > 0 ? 1000L * seconds : 0;
}

int
resolveRetries(int requested)
{
    if (requested >= 0)
        return requested;
    int n = envInt(kEnvExpRetries, 0);
    return n > 0 ? n : 0;
}

// --- deterministic failure injection (tests/CI only) ------------------------

constexpr const char *kHookCrash = "__test_crash__";
constexpr const char *kHookHang = "__test_hang__";
constexpr const char *kHookFail = "__test_fail__";

bool
testHookEnabled()
{
    return envRaw(kEnvExpTestHook) == "1";
}

/** True when the scenario is a test-hook trigger (hook enabled). */
bool
testHookScenario(const Scenario &s)
{
    return testHookEnabled() &&
           (s.label == kHookCrash || s.label == kHookHang ||
            s.label == kHookFail);
}

/**
 * Fire the requested failure mode. Runs at the top of runScenario,
 * so in fork mode the crash/hang lands inside the isolation child —
 * exactly where a real segfault or livelock would.
 */
void
maybeTestHook(const Scenario &s)
{
    if (!testHookEnabled())
        return;
    if (s.label == kHookCrash)
        std::abort();
    if (s.label == kHookHang)
        for (;;)
            ::pause();
    if (s.label == kHookFail)
        fatal("test hook: synthetic failure");
}

// --- process isolation ------------------------------------------------------

/**
 * Run one scenario in a forked child; the result crosses back over a
 * pipe as one JSON document. Any child death — crash signal, abort,
 * nonzero exit, torn payload, watchdog kill — surfaces as FatalError
 * here, which the retry/policy layer in evalScenario then handles.
 *
 * Fork-safety contract: in isolate mode the parent's worker threads
 * never touch the TopologyCache (or any other process-wide lock the
 * child needs) between pool start and join, so the child's copied
 * lock state is always free. The child itself uses only raw write()
 * on its pipe end and exits with _exit() — no stdio, no atexit.
 */
SimResult
runScenarioIsolated(const Scenario &s, long timeoutMs)
{
    int fds[2];
    if (::pipe(fds) != 0)
        fatal("pipe failed: ", std::strerror(errno));

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        fatal("fork failed: ", std::strerror(errno));
    }

    if (pid == 0) {
        // Child: simulate, serialize, write, vanish.
        ::close(fds[0]);
        std::string payload;
        try {
            SimResult r = ExperimentRunner::runScenario(s);
            JsonValue doc = JsonValue::object();
            doc.set("ok", JsonValue::boolean(true));
            doc.set("sim", toJson(r));
            payload = doc.dump(-1);
        } catch (const std::exception &e) {
            JsonValue doc = JsonValue::object();
            doc.set("ok", JsonValue::boolean(false));
            doc.set("error", JsonValue::string(e.what()));
            payload = doc.dump(-1);
        }
        std::size_t off = 0;
        while (off < payload.size()) {
            ssize_t n = ::write(fds[1], payload.data() + off,
                                payload.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            off += static_cast<std::size_t>(n);
        }
        ::close(fds[1]);
        ::_exit(0);
    }

    // Parent: drain the pipe until EOF or the watchdog deadline.
    ::close(fds[1]);
    using Clock = std::chrono::steady_clock;
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs);
    std::string payload;
    bool timedOut = false;
    char buf[4096];
    for (;;) {
        int waitMs = -1;
        if (timeoutMs > 0) {
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
            if (left <= 0) {
                timedOut = true;
                break;
            }
            waitMs = static_cast<int>(std::min<long long>(left, 200));
        }
        struct pollfd p{};
        p.fd = fds[0];
        p.events = POLLIN;
        int pr = ::poll(&p, 1, waitMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            continue; // re-check the deadline
        ssize_t n = ::read(fds[0], buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break; // EOF: child finished (or died) cleanly
        payload.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fds[0]);

    if (timedOut)
        ::kill(pid, SIGKILL);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }

    if (timedOut)
        fatal("job timed out after ", timeoutMs, " ms (worker killed)");
    if (WIFSIGNALED(status))
        fatal("job crashed: worker killed by signal ",
              WTERMSIG(status));
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
        fatal("job worker exited with status ",
              WIFEXITED(status) ? WEXITSTATUS(status) : -1);

    JsonValue doc;
    try {
        doc = JsonValue::parse(payload, "job result pipe");
    } catch (const FatalError &) {
        fatal("job crashed: torn result payload from worker");
    }
    const JsonValue *ok = doc.find("ok");
    if (ok && ok->isBool() && !ok->asBool("$.ok")) {
        const JsonValue *err = doc.find("error");
        fatal(err && err->isString() ? err->asString("$.error")
                                     : "job failed in worker");
    }
    const JsonValue *sim = doc.find("sim");
    if (!sim)
        fatal("job crashed: result payload missing 'sim'");
    return simResultFromJson(*sim, "$.sim");
}

/**
 * Build the traffic source a scenario asks for (synthetic,
 * closed-loop, or collective; trace workloads never reach here).
 * Shared by the serial, sharded, and batched execution paths so the
 * same Scenario always drives the same source in every mode.
 */
TrafficSource
makeScenarioSource(const Scenario &s, const NocTopology &topo)
{
    switch (s.traffic.kind) {
      case TrafficSpec::Kind::ClosedLoop: {
        auto pattern = std::shared_ptr<TrafficPattern>(
            makeTrafficPattern(s.traffic.pattern, topo));
        return makeClosedLoopSource(std::move(pattern),
                                    s.traffic.closedLoop, s.seed)
            .source;
      }
      case TrafficSpec::Kind::Collective:
        return makeCollectiveSource(s.traffic.collective).source;
      case TrafficSpec::Kind::Workload:
        SNOC_PANIC("trace workloads have no TrafficSource");
      case TrafficSpec::Kind::Synthetic:
        break;
    }
    auto pattern = std::shared_ptr<TrafficPattern>(
        makeTrafficPattern(s.traffic.pattern, topo));
    SyntheticConfig sc;
    sc.load = s.load;
    sc.packetSizeFlits = s.traffic.packetSizeFlits;
    sc.seed = s.seed;
    return makeSyntheticSource(std::move(pattern), sc);
}

/** Attach energy metrics to every point of every job result. */
void
applyEnergyMetrics(std::vector<JobResult> &results)
{
    // Failed rows carry no measurement (and their scenario may be
    // the very thing that cannot build a topology) — skip them.
    for (JobResult &job : results)
        for (ScenarioResult &point : job.points)
            if (point.ok)
                point.energy =
                    evaluateEnergy(point.scenario, point.sim);
}

} // namespace

EnergyMetrics
evaluateEnergy(const Scenario &s, const SimResult &r)
{
    EnergyMetrics m;
    if (!s.energy.enabled)
        return m;
    const NocTopology &topo =
        TopologyCache::instance().get(s.topology);
    PowerModel pm(topo, RouterConfig::named(s.routerConfig),
                  techCornerByName(s.energy.tech),
                  s.link.hopsPerCycle, s.energy.flitBits);
    m.valid = true;
    m.dynamicW = pm.dynamicPower(r.counters, r.cyclesRun).total();
    m.staticW = pm.staticPower().total();
    m.totalW = m.staticW + m.dynamicW;
    m.flitsPerJoule = pm.throughputPerPower(r.counters, r.cyclesRun);
    m.edpJs =
        pm.energyDelay(r.counters, r.cyclesRun, r.avgPacketLatency);
    return m;
}

ExperimentRunner::ExperimentRunner(RunnerOptions opts)
    : threads_(resolveThreads(opts.threads)),
      batchLanes_(resolveBatchLanes(opts.batchLanes)),
      simShards_(resolveSimShards(opts.simShards)),
      isolate_(resolveIsolate(opts.isolate)),
      timeoutMs_(resolveTimeoutMs(opts.jobTimeoutMs)),
      retries_(resolveRetries(opts.retries)),
      opts_(std::move(opts))
{
    // A watchdog can only ever kill a process, not a thread.
    if (timeoutMs_ > 0)
        isolate_ = true;
    // Isolation children evaluate one scenario each, serially.
    if (isolate_)
        batchLanes_ = 0;
    // Sharding (one big simulation across threads) and lane batching
    // (many small simulations on one thread) pull the execution in
    // opposite directions; shards win when both are requested.
    if (simShards_ >= 2)
        batchLanes_ = 0;
}

SimResult
ExperimentRunner::runScenario(const Scenario &s)
{
    return runScenario(s, 1);
}

SimResult
ExperimentRunner::runScenario(const Scenario &s, int simShards)
{
    maybeTestHook(s);
    const NocTopology &topo = TopologyCache::instance().get(s.topology);
    RouterConfig rc = RouterConfig::named(s.routerConfig);
    Network net(topo, rc, s.link, s.routing, s.routingSeed, s.faults);

    if (s.traffic.kind == TrafficSpec::Kind::Workload) {
        // Workload runs step the network inside runWorkload's
        // reply-dependent loop; they always take the serial path.
        const WorkloadProfile &w = workloadByName(s.traffic.workload);
        return runWorkload(net, w, s.traffic.workloadCycles, s.seed);
    }

    TrafficSource source = makeScenarioSource(s, topo);
    if (simShards >= 2 && topo.numRouters() >= 2) {
        ShardedNetwork sn(net, simShards);
        return runShardedSimulation(sn, std::move(source), s.sim);
    }
    return runSimulation(net, std::move(source), s.sim);
}

/**
 * Evaluate one scenario through the full crash-safe pipeline:
 * consult the result store, then attempt the simulation (in-process
 * or in a forked child) with bounded retries and exponential
 * backoff. Under FailurePolicy::Abort the final failure rethrows —
 * the pre-existing exception contract; under Record it comes back as
 * an ok=false row. `stats` accumulates the owning job's bookkeeping.
 */
ScenarioResult
ExperimentRunner::evalScenario(const Scenario &s,
                               JobResult &stats) const
{
    ScenarioResult out;
    out.scenario = s;

    std::string key;
    if (opts_.store) {
        key = resultKey(s);
        if (std::optional<SimResult> hit = opts_.store->lookup(key)) {
            ++stats.cacheHits;
            out.sim = *hit;
            return out;
        }
    }
    ++stats.cacheMisses;

    int attempts = 1 + retries_;
    std::string lastError;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            ++stats.retries;
            long ms = std::min(100L << (attempt - 1), 2000L);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(ms));
        }
        try {
            out.sim = isolate_ ? runScenarioIsolated(s, timeoutMs_)
                               : runScenario(s, simShards_);
            if (opts_.store)
                opts_.store->put(key, s, out.sim);
            return out;
        } catch (const std::exception &e) {
            lastError = e.what();
            if (attempt + 1 == attempts &&
                opts_.onFailure == FailurePolicy::Abort)
                throw;
        }
    }

    out.ok = false;
    out.error = lastError;
    out.sim = SimResult{};
    return out;
}

JobResult
ExperimentRunner::runJob(const Job &job) const
{
    JobResult out;
    out.kind = job.kind;
    auto t0 = std::chrono::steady_clock::now();

    // Thrown when a Record-policy point failure must stop the job's
    // strategy (the failed row is already recorded by then).
    struct PointFailed
    {
    };

    // Every point of a sweep/search reuses the base Scenario with
    // only the swept axis replaced (offered load, or the closed-loop
    // axis via applySweepValue), so point results match what a
    // Single job at that value would produce. Points are recorded
    // the moment they are evaluated — runLoadSweep/findSaturation
    // push probes in evaluation order, so the rows are identical to
    // the historical record-after-the-fact form, and a job that dies
    // mid-sweep keeps its completed prefix.
    auto evalInto = [this, &out](const Scenario &s)
        -> const ScenarioResult & {
        out.points.push_back(evalScenario(s, out));
        return out.points.back();
    };
    auto evalAt = [&](double load) -> SimResult {
        Scenario point = job.scenario;
        applySweepValue(point, load);
        const ScenarioResult &r = evalInto(point);
        if (!r.ok)
            throw PointFailed{};
        return r.sim;
    };

    try {
        switch (job.kind) {
        case Job::Kind::Single:
            evalInto(job.scenario);
            break;
        case Job::Kind::Sweep:
            if (!job.stopAtSaturation) {
                // Every load runs unconditionally, so one failed
                // point need not end the job: later loads still run
                // and record their own rows.
                for (double load : job.loads) {
                    Scenario point = job.scenario;
                    applySweepValue(point, load);
                    evalInto(point);
                }
            } else {
                runLoadSweep(evalAt, job.loads, job.stopAtSaturation,
                             job.saturationFactor);
            }
            break;
        case Job::Kind::Saturation: {
            SaturationResult sat =
                findSaturation(evalAt, job.saturation);
            out.saturationLoad = sat.saturationLoad;
            out.bestThroughput = sat.bestThroughput;
            break;
        }
        }
    } catch (const PointFailed &) {
        // A stopping sweep / saturation search cannot continue past
        // a failed probe; the row itself is already in out.points.
    }

    for (const ScenarioResult &p : out.points) {
        if (!p.ok) {
            out.status = JobStatus::Failed;
            out.error = p.error;
            break;
        }
    }
    out.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    return out;
}

// --- batched execution ------------------------------------------------------

namespace {

/** One batchable evaluation point: (job, point slot, scenario). */
struct BatchUnit
{
    std::size_t job = 0;
    std::size_t point = 0;
    Scenario scenario;
};

/**
 * A job is batchable when its evaluation points are known up front
 * and independent: Single jobs, and Sweeps that evaluate every load
 * unconditionally. Saturation searches pick each probe from the
 * previous result, stop-at-saturation sweeps abort mid-grid, and
 * workload traffic drives reply-dependent sources — those keep the
 * sequential path.
 */
bool
batchableJob(const Job &job)
{
    if (job.scenario.traffic.kind == TrafficSpec::Kind::Workload)
        return false;
    switch (job.kind) {
    case Job::Kind::Single:
        return true;
    case Job::Kind::Sweep:
        return !job.stopAtSaturation && !job.loads.empty();
    case Job::Kind::Saturation:
        return false;
    }
    return false;
}

/** Scenarios may share a BatchedNetwork iff they build identical
 *  immutable structure: same topology, router microarchitecture,
 *  link config, and routing mode. (Seeds, loads, patterns, fault
 *  plans, and sim windows are per-lane state.) */
std::string
batchKey(const Scenario &s)
{
    std::string k = s.topology;
    k += '\x1f';
    k += s.routerConfig;
    k += '\x1f';
    k += std::to_string(s.link.hopsPerCycle);
    k += '\x1f';
    k += std::to_string(static_cast<int>(s.routing));
    return k;
}

/** Run one chunk of same-structure units as BatchedNetwork lanes. */
void
runBatchChunk(const std::vector<const BatchUnit *> &chunk,
              std::vector<JobResult> &results)
{
    const Scenario &s0 = chunk.front()->scenario;
    auto topo = TopologyCache::instance().getShared(s0.topology);
    RouterConfig rc = RouterConfig::named(s0.routerConfig);

    std::vector<BatchedNetwork::LaneSpec> specs;
    specs.reserve(chunk.size());
    for (const BatchUnit *u : chunk)
        specs.push_back({u->scenario.routingSeed, u->scenario.faults});
    BatchedNetwork bn(topo, rc, s0.link, s0.routing, specs);

    std::vector<BatchLaneSim> lanes;
    lanes.reserve(chunk.size());
    for (const BatchUnit *u : chunk)
        lanes.push_back(
            {makeScenarioSource(u->scenario, *topo), u->scenario.sim});

    std::vector<SimResult> res = runBatchedSimulation(bn, lanes);
    for (std::size_t l = 0; l < chunk.size(); ++l) {
        const BatchUnit &u = *chunk[l];
        results[u.job].points[u.point] = {u.scenario, res[l]};
    }
}

} // namespace

void
ExperimentRunner::runBatched(const ExperimentPlan &plan,
                             const std::vector<bool> &done,
                             std::vector<JobResult> &results) const
{
    std::size_t total = plan.jobs.size();

    // Classify jobs and expand batchable ones into evaluation points
    // with pre-sized result slots (a non-stopping sweep evaluates
    // every load, so the point count is known here). Jobs already
    // completed by a resumed journal are skipped outright; points
    // present in the result store fill their slot here and never
    // become units. Test-hook scenarios take the fallback path so
    // injected failures flow through the same retry/policy pipeline
    // as unbatched execution.
    std::vector<BatchUnit> units;
    std::vector<std::size_t> fallbackJobs;
    std::vector<std::size_t> cachedJobs; //!< fully served by store
    std::vector<std::size_t> remaining(total, 0);
    auto tryCache = [this](const Scenario &s, JobResult &job,
                           ScenarioResult &slot) {
        if (!opts_.store)
            return false;
        if (std::optional<SimResult> hit =
                opts_.store->lookup(resultKey(s))) {
            ++job.cacheHits;
            slot = {s, *hit};
            return true;
        }
        ++job.cacheMisses;
        return false;
    };
    for (std::size_t i = 0; i < total; ++i) {
        if (done[i])
            continue;
        const Job &job = plan.jobs[i];
        if (!batchableJob(job) || testHookScenario(job.scenario)) {
            fallbackJobs.push_back(i);
            remaining[i] = 1;
            continue;
        }
        results[i].kind = job.kind;
        if (job.kind == Job::Kind::Single) {
            results[i].points.resize(1);
            if (!tryCache(job.scenario, results[i],
                          results[i].points[0])) {
                units.push_back({i, 0, job.scenario});
                remaining[i] = 1;
            }
        } else {
            results[i].points.resize(job.loads.size());
            for (std::size_t k = 0; k < job.loads.size(); ++k) {
                Scenario s = job.scenario;
                applySweepValue(s, job.loads[k]);
                if (tryCache(s, results[i], results[i].points[k]))
                    continue;
                units.push_back({i, k, std::move(s)});
                ++remaining[i];
            }
        }
        if (remaining[i] == 0)
            cachedJobs.push_back(i);
    }

    // Group compatible units (std::map: deterministic group order),
    // then cut each group into lane-capped chunks. Units stay in
    // plan order within a group; chunk composition is therefore a
    // pure function of the plan, independent of thread count —
    // and lane membership cannot change a result anyway (the
    // determinism contract batch_test enforces).
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t u = 0; u < units.size(); ++u)
        groups[batchKey(units[u].scenario)].push_back(u);

    struct Task
    {
        std::vector<const BatchUnit *> chunk; //!< empty => fallback
        std::size_t fallbackJob = 0;
    };
    std::vector<Task> tasks;
    std::size_t cap = static_cast<std::size_t>(batchLanes_);
    for (const auto &[key, g] : groups) {
        for (std::size_t off = 0; off < g.size(); off += cap) {
            Task t;
            std::size_t end = std::min(g.size(), off + cap);
            for (std::size_t u = off; u < end; ++u)
                t.chunk.push_back(&units[g[u]]);
            tasks.push_back(std::move(t));
        }
    }
    for (std::size_t j : fallbackJobs)
        tasks.push_back(Task{{}, j});

    // Progress fires when a job's last evaluation point lands, so
    // callers still see (jobs done, jobs total) exactly `total`
    // times, batched or not; jobDone fires at the same moment, after
    // the job's status is finalized from its rows.
    std::mutex reportMutex;
    std::size_t jobsDone = 0;
    for (std::size_t i = 0; i < total; ++i)
        if (done[i])
            ++jobsDone; // resumed jobs count as already finished
    auto finishJob = [&](std::size_t job) {
        // Called under reportMutex, once the job's last unit landed.
        for (const ScenarioResult &p : results[job].points) {
            if (!p.ok) {
                results[job].status = JobStatus::Failed;
                results[job].error = p.error;
                break;
            }
        }
        if (opts_.jobDone)
            opts_.jobDone(job, results[job]);
        if (opts_.progress)
            opts_.progress(++jobsDone, total);
    };
    auto noteUnitsDone = [&](const Task &t, double chunkMs) {
        std::lock_guard<std::mutex> lock(reportMutex);
        auto noteJob = [&](std::size_t job, double shareMs) {
            results[job].wallMs += shareMs;
            if (--remaining[job] == 0)
                finishJob(job);
        };
        if (t.chunk.empty()) {
            // runJob measured its own wall time already.
            noteJob(t.fallbackJob, 0.0);
        } else {
            // Lanes share one cycle loop; attribute the chunk's wall
            // time evenly across its units.
            double share = chunkMs / static_cast<double>(
                                         t.chunk.size());
            for (const BatchUnit *u : t.chunk)
                noteJob(u->job, share);
        }
    };

    // Jobs fully served by the store complete before the pool even
    // starts, in plan order.
    for (std::size_t job : cachedJobs) {
        std::lock_guard<std::mutex> lock(reportMutex);
        finishJob(job);
    }

    auto runTask = [&](const Task &t) {
        if (t.chunk.empty()) {
            results[t.fallbackJob] = runJob(plan.jobs[t.fallbackJob]);
            noteUnitsDone(t, 0.0);
            return;
        }
        auto c0 = std::chrono::steady_clock::now();
        try {
            if (t.chunk.size() == 1) {
                // One lane amortizes nothing; take the plain path.
                const BatchUnit *u = t.chunk[0];
                SimResult r = runScenario(u->scenario);
                results[u->job].points[u->point] = {u->scenario, r};
                if (opts_.store)
                    opts_.store->put(resultKey(u->scenario),
                                     u->scenario, r);
            } else {
                runBatchChunk(t.chunk, results);
                if (opts_.store)
                    for (const BatchUnit *u : t.chunk)
                        opts_.store->put(
                            resultKey(u->scenario), u->scenario,
                            results[u->job].points[u->point].sim);
            }
        } catch (const std::exception &e) {
            if (opts_.onFailure == FailurePolicy::Abort)
                throw;
            // One bad lane spec poisons its whole chunk (they share
            // a network build); every affected slot becomes a failed
            // row and the campaign keeps going.
            for (const BatchUnit *u : t.chunk) {
                ScenarioResult fail;
                fail.scenario = u->scenario;
                fail.ok = false;
                fail.error = e.what();
                results[u->job].points[u->point] = std::move(fail);
            }
        }
        double chunkMs = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - c0)
                             .count();
        noteUnitsDone(t, chunkMs);
    };

    int workers =
        std::min<int>(threads_, static_cast<int>(tasks.size()));
    if (workers <= 1) {
        for (const Task &t : tasks)
            runTask(t);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex errorMutex;
    std::exception_ptr firstError;
    auto worker = [&]() {
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t i = next.fetch_add(1);
            if (i >= tasks.size())
                return;
            try {
                runTask(tasks[i]);
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

std::vector<JobResult>
ExperimentRunner::run(const ExperimentPlan &plan) const
{
    std::size_t total = plan.jobs.size();
    std::vector<JobResult> results(total);
    if (total == 0)
        return results;

    // Resume: journaled jobs are spliced in verbatim and never
    // re-executed. Their rows are bitwise what a fresh run would
    // have produced (exact-double round trip), and their energy is
    // re-derived below along with everyone else's, so resumed output
    // is byte-identical to an uninterrupted run.
    std::vector<bool> completed(total, false);
    std::size_t resumed = 0;
    if (opts_.completed) {
        for (const auto &[idx, r] : *opts_.completed) {
            if (idx < total) {
                results[idx] = r;
                completed[idx] = true;
                ++resumed;
            }
        }
    }

    if (batchLanes_ >= 2) {
        runBatched(plan, completed, results);
        // Energy is evaluated after execution, from the already-
        // assembled results: a pure function of (scenario, sim), so
        // the metrics cannot differ between execution modes.
        applyEnergyMetrics(results);
        return results;
    }

    std::vector<std::size_t> pending;
    pending.reserve(total - resumed);
    for (std::size_t i = 0; i < total; ++i)
        if (!completed[i])
            pending.push_back(i);

    std::mutex reportMutex;
    std::size_t jobsDone = resumed;
    auto finishJob = [&](std::size_t idx, bool ranToCompletion) {
        std::lock_guard<std::mutex> lock(reportMutex);
        if (ranToCompletion && opts_.jobDone)
            opts_.jobDone(idx, results[idx]);
        if (opts_.progress)
            opts_.progress(++jobsDone, total);
    };

    // Shard-aware planning: each sharded job claims simShards_
    // threads of its own, so the job-level pool shrinks to keep the
    // total at ~threads_.
    int workers =
        std::min<int>(std::max(1, threads_ / simShards_),
                      static_cast<int>(pending.size()));

    if (workers <= 1) {
        for (std::size_t idx : pending) {
            results[idx] = runJob(plan.jobs[idx]);
            finishJob(idx, true);
        }
        applyEnergyMetrics(results);
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;

    auto worker = [&]() {
        // Stop dispatching new jobs once any job has failed (jobs
        // already in flight finish), mirroring the serial path's
        // abort-at-first-error semantics. Under FailurePolicy::Record
        // runJob absorbs evaluation failures into failed rows, so
        // this trips only on genuinely unexpected errors.
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t slot = next.fetch_add(1);
            if (slot >= pending.size())
                return;
            std::size_t idx = pending[slot];
            bool ok = false;
            try {
                results[idx] = runJob(plan.jobs[idx]);
                ok = true;
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(reportMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
            finishJob(idx, ok);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);
    applyEnergyMetrics(results);
    return results;
}

} // namespace snoc
