#include "exp/runner.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/env.hh"
#include "common/log.hh"
#include "topo/topology_cache.hh"
#include "trace/trace.hh"
#include "traffic/synthetic.hh"

namespace snoc {

namespace {

int
resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    if (int n = envInt(kEnvExpThreads, 0); n > 0)
        return n;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace

ExperimentRunner::ExperimentRunner(RunnerOptions opts)
    : threads_(resolveThreads(opts.threads)), opts_(std::move(opts))
{
}

SimResult
ExperimentRunner::runScenario(const Scenario &s)
{
    const NocTopology &topo = TopologyCache::instance().get(s.topology);
    RouterConfig rc = RouterConfig::named(s.routerConfig);
    Network net(topo, rc, s.link, s.routing, s.routingSeed, s.faults);

    if (s.traffic.kind == TrafficSpec::Kind::Workload) {
        const WorkloadProfile &w = workloadByName(s.traffic.workload);
        return runWorkload(net, w, s.traffic.workloadCycles, s.seed);
    }

    auto pattern = std::shared_ptr<TrafficPattern>(
        makeTrafficPattern(s.traffic.pattern, topo));
    SyntheticConfig sc;
    sc.load = s.load;
    sc.packetSizeFlits = s.traffic.packetSizeFlits;
    sc.seed = s.seed;
    return runSimulation(net, makeSyntheticSource(pattern, sc), s.sim);
}

JobResult
ExperimentRunner::runJob(const Job &job) const
{
    JobResult out;
    out.kind = job.kind;

    // Every point of a sweep/search reuses the base Scenario with
    // only the load replaced, so point results match what a Single
    // job at that load would produce.
    auto evalAt = [&job](double load) {
        Scenario point = job.scenario;
        point.load = load;
        return runScenario(point);
    };
    auto record = [&job, &out](const LoadPoint &p) {
        Scenario s = job.scenario;
        s.load = p.load;
        out.points.push_back({std::move(s), p.result});
    };

    switch (job.kind) {
    case Job::Kind::Single:
        out.points.push_back({job.scenario, runScenario(job.scenario)});
        break;
    case Job::Kind::Sweep:
        for (const LoadPoint &p :
             runLoadSweep(evalAt, job.loads, job.stopAtSaturation,
                          job.saturationFactor))
            record(p);
        break;
    case Job::Kind::Saturation: {
        SaturationResult sat = findSaturation(evalAt, job.saturation);
        for (const LoadPoint &p : sat.probes)
            record(p);
        out.saturationLoad = sat.saturationLoad;
        out.bestThroughput = sat.bestThroughput;
        break;
    }
    }
    return out;
}

std::vector<JobResult>
ExperimentRunner::run(const ExperimentPlan &plan) const
{
    std::vector<JobResult> results(plan.jobs.size());
    if (plan.jobs.empty())
        return results;

    std::size_t total = plan.jobs.size();
    int workers =
        std::min<int>(threads_, static_cast<int>(total));

    if (workers <= 1) {
        for (std::size_t i = 0; i < total; ++i) {
            results[i] = runJob(plan.jobs[i]);
            if (opts_.progress)
                opts_.progress(i + 1, total);
        }
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex reportMutex;
    std::exception_ptr firstError;

    auto worker = [&]() {
        // Stop dispatching new jobs once any job has failed (jobs
        // already in flight finish), mirroring the serial path's
        // abort-at-first-error semantics.
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t i = next.fetch_add(1);
            if (i >= total)
                return;
            try {
                results[i] = runJob(plan.jobs[i]);
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(reportMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
            std::size_t finished = done.fetch_add(1) + 1;
            if (opts_.progress) {
                std::lock_guard<std::mutex> lock(reportMutex);
                opts_.progress(finished, total);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

} // namespace snoc
