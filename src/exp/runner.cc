#include "exp/runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include "common/env.hh"
#include "common/log.hh"
#include "power/power_model.hh"
#include "sim/batch.hh"
#include "sim/shard.hh"
#include "topo/topology_cache.hh"
#include "trace/trace.hh"
#include "traffic/synthetic.hh"
#include "workload/closed_loop.hh"
#include "workload/collective.hh"

namespace snoc {

namespace {

int
resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    if (int n = envInt(kEnvExpThreads, 0); n > 0)
        return n;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

int
resolveBatchLanes(int requested)
{
    int lanes = requested;
    if (lanes < 0) {
        std::string raw = envRaw(kEnvExpBatch);
        if (raw.empty() || raw == "1")
            lanes = 8; // on by default: results are identical
        else if (raw == "off" || raw == "0")
            lanes = 0;
        else {
            int n = std::atoi(raw.c_str());
            lanes = n >= 2 ? n : 8;
        }
    }
    if (lanes <= 1)
        return 0;
    return std::min(lanes, BatchedNetwork::kMaxLanes);
}

constexpr int kMaxShards = 64;

int
resolveSimShards(int requested)
{
    int shards = requested;
    if (shards < 0) {
        std::string raw = envRaw(kEnvSimShards);
        if (raw.empty() || raw == "off" || raw == "0" || raw == "1")
            shards = 1; // serial loop by default
        else {
            int n = std::atoi(raw.c_str());
            shards = n >= 2 ? n : 1;
        }
    }
    if (shards <= 1)
        return 1;
    return std::min(shards, kMaxShards);
}

/**
 * Build the traffic source a scenario asks for (synthetic,
 * closed-loop, or collective; trace workloads never reach here).
 * Shared by the serial, sharded, and batched execution paths so the
 * same Scenario always drives the same source in every mode.
 */
TrafficSource
makeScenarioSource(const Scenario &s, const NocTopology &topo)
{
    switch (s.traffic.kind) {
      case TrafficSpec::Kind::ClosedLoop: {
        auto pattern = std::shared_ptr<TrafficPattern>(
            makeTrafficPattern(s.traffic.pattern, topo));
        return makeClosedLoopSource(std::move(pattern),
                                    s.traffic.closedLoop, s.seed)
            .source;
      }
      case TrafficSpec::Kind::Collective:
        return makeCollectiveSource(s.traffic.collective).source;
      case TrafficSpec::Kind::Workload:
        SNOC_PANIC("trace workloads have no TrafficSource");
      case TrafficSpec::Kind::Synthetic:
        break;
    }
    auto pattern = std::shared_ptr<TrafficPattern>(
        makeTrafficPattern(s.traffic.pattern, topo));
    SyntheticConfig sc;
    sc.load = s.load;
    sc.packetSizeFlits = s.traffic.packetSizeFlits;
    sc.seed = s.seed;
    return makeSyntheticSource(std::move(pattern), sc);
}

/** Attach energy metrics to every point of every job result. */
void
applyEnergyMetrics(std::vector<JobResult> &results)
{
    for (JobResult &job : results)
        for (ScenarioResult &point : job.points)
            point.energy = evaluateEnergy(point.scenario, point.sim);
}

} // namespace

EnergyMetrics
evaluateEnergy(const Scenario &s, const SimResult &r)
{
    EnergyMetrics m;
    if (!s.energy.enabled)
        return m;
    const NocTopology &topo =
        TopologyCache::instance().get(s.topology);
    PowerModel pm(topo, RouterConfig::named(s.routerConfig),
                  techCornerByName(s.energy.tech),
                  s.link.hopsPerCycle, s.energy.flitBits);
    m.valid = true;
    m.dynamicW = pm.dynamicPower(r.counters, r.cyclesRun).total();
    m.staticW = pm.staticPower().total();
    m.totalW = m.staticW + m.dynamicW;
    m.flitsPerJoule = pm.throughputPerPower(r.counters, r.cyclesRun);
    m.edpJs =
        pm.energyDelay(r.counters, r.cyclesRun, r.avgPacketLatency);
    return m;
}

ExperimentRunner::ExperimentRunner(RunnerOptions opts)
    : threads_(resolveThreads(opts.threads)),
      batchLanes_(resolveBatchLanes(opts.batchLanes)),
      simShards_(resolveSimShards(opts.simShards)),
      opts_(std::move(opts))
{
    // Sharding (one big simulation across threads) and lane batching
    // (many small simulations on one thread) pull the execution in
    // opposite directions; shards win when both are requested.
    if (simShards_ >= 2)
        batchLanes_ = 0;
}

SimResult
ExperimentRunner::runScenario(const Scenario &s)
{
    return runScenario(s, 1);
}

SimResult
ExperimentRunner::runScenario(const Scenario &s, int simShards)
{
    const NocTopology &topo = TopologyCache::instance().get(s.topology);
    RouterConfig rc = RouterConfig::named(s.routerConfig);
    Network net(topo, rc, s.link, s.routing, s.routingSeed, s.faults);

    if (s.traffic.kind == TrafficSpec::Kind::Workload) {
        // Workload runs step the network inside runWorkload's
        // reply-dependent loop; they always take the serial path.
        const WorkloadProfile &w = workloadByName(s.traffic.workload);
        return runWorkload(net, w, s.traffic.workloadCycles, s.seed);
    }

    TrafficSource source = makeScenarioSource(s, topo);
    if (simShards >= 2 && topo.numRouters() >= 2) {
        ShardedNetwork sn(net, simShards);
        return runShardedSimulation(sn, std::move(source), s.sim);
    }
    return runSimulation(net, std::move(source), s.sim);
}

JobResult
ExperimentRunner::runJob(const Job &job) const
{
    JobResult out;
    out.kind = job.kind;

    // Every point of a sweep/search reuses the base Scenario with
    // only the swept axis replaced (offered load, or the closed-loop
    // axis via applySweepValue), so point results match what a
    // Single job at that value would produce.
    auto evalAt = [this, &job](double load) {
        Scenario point = job.scenario;
        applySweepValue(point, load);
        return runScenario(point, simShards_);
    };
    auto record = [&job, &out](const LoadPoint &p) {
        Scenario s = job.scenario;
        applySweepValue(s, p.load);
        out.points.push_back({std::move(s), p.result});
    };

    switch (job.kind) {
    case Job::Kind::Single:
        out.points.push_back(
            {job.scenario, runScenario(job.scenario, simShards_)});
        break;
    case Job::Kind::Sweep:
        for (const LoadPoint &p :
             runLoadSweep(evalAt, job.loads, job.stopAtSaturation,
                          job.saturationFactor))
            record(p);
        break;
    case Job::Kind::Saturation: {
        SaturationResult sat = findSaturation(evalAt, job.saturation);
        for (const LoadPoint &p : sat.probes)
            record(p);
        out.saturationLoad = sat.saturationLoad;
        out.bestThroughput = sat.bestThroughput;
        break;
    }
    }
    return out;
}

// --- batched execution ------------------------------------------------------

namespace {

/** One batchable evaluation point: (job, point slot, scenario). */
struct BatchUnit
{
    std::size_t job = 0;
    std::size_t point = 0;
    Scenario scenario;
};

/**
 * A job is batchable when its evaluation points are known up front
 * and independent: Single jobs, and Sweeps that evaluate every load
 * unconditionally. Saturation searches pick each probe from the
 * previous result, stop-at-saturation sweeps abort mid-grid, and
 * workload traffic drives reply-dependent sources — those keep the
 * sequential path.
 */
bool
batchableJob(const Job &job)
{
    if (job.scenario.traffic.kind == TrafficSpec::Kind::Workload)
        return false;
    switch (job.kind) {
    case Job::Kind::Single:
        return true;
    case Job::Kind::Sweep:
        return !job.stopAtSaturation && !job.loads.empty();
    case Job::Kind::Saturation:
        return false;
    }
    return false;
}

/** Scenarios may share a BatchedNetwork iff they build identical
 *  immutable structure: same topology, router microarchitecture,
 *  link config, and routing mode. (Seeds, loads, patterns, fault
 *  plans, and sim windows are per-lane state.) */
std::string
batchKey(const Scenario &s)
{
    std::string k = s.topology;
    k += '\x1f';
    k += s.routerConfig;
    k += '\x1f';
    k += std::to_string(s.link.hopsPerCycle);
    k += '\x1f';
    k += std::to_string(static_cast<int>(s.routing));
    return k;
}

/** Run one chunk of same-structure units as BatchedNetwork lanes. */
void
runBatchChunk(const std::vector<const BatchUnit *> &chunk,
              std::vector<JobResult> &results)
{
    const Scenario &s0 = chunk.front()->scenario;
    auto topo = TopologyCache::instance().getShared(s0.topology);
    RouterConfig rc = RouterConfig::named(s0.routerConfig);

    std::vector<BatchedNetwork::LaneSpec> specs;
    specs.reserve(chunk.size());
    for (const BatchUnit *u : chunk)
        specs.push_back({u->scenario.routingSeed, u->scenario.faults});
    BatchedNetwork bn(topo, rc, s0.link, s0.routing, specs);

    std::vector<BatchLaneSim> lanes;
    lanes.reserve(chunk.size());
    for (const BatchUnit *u : chunk)
        lanes.push_back(
            {makeScenarioSource(u->scenario, *topo), u->scenario.sim});

    std::vector<SimResult> res = runBatchedSimulation(bn, lanes);
    for (std::size_t l = 0; l < chunk.size(); ++l) {
        const BatchUnit &u = *chunk[l];
        results[u.job].points[u.point] = {u.scenario, res[l]};
    }
}

} // namespace

std::vector<JobResult>
ExperimentRunner::runBatched(const ExperimentPlan &plan) const
{
    std::size_t total = plan.jobs.size();
    std::vector<JobResult> results(total);

    // Classify jobs and expand batchable ones into evaluation points
    // with pre-sized result slots (a non-stopping sweep evaluates
    // every load, so the point count is known here).
    std::vector<BatchUnit> units;
    std::vector<std::size_t> fallbackJobs;
    std::vector<std::size_t> remaining(total, 0);
    for (std::size_t i = 0; i < total; ++i) {
        const Job &job = plan.jobs[i];
        if (!batchableJob(job)) {
            fallbackJobs.push_back(i);
            remaining[i] = 1;
            continue;
        }
        results[i].kind = job.kind;
        if (job.kind == Job::Kind::Single) {
            results[i].points.resize(1);
            units.push_back({i, 0, job.scenario});
            remaining[i] = 1;
        } else {
            results[i].points.resize(job.loads.size());
            for (std::size_t k = 0; k < job.loads.size(); ++k) {
                Scenario s = job.scenario;
                applySweepValue(s, job.loads[k]);
                units.push_back({i, k, std::move(s)});
            }
            remaining[i] = job.loads.size();
        }
    }

    // Group compatible units (std::map: deterministic group order),
    // then cut each group into lane-capped chunks. Units stay in
    // plan order within a group; chunk composition is therefore a
    // pure function of the plan, independent of thread count —
    // and lane membership cannot change a result anyway (the
    // determinism contract batch_test enforces).
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t u = 0; u < units.size(); ++u)
        groups[batchKey(units[u].scenario)].push_back(u);

    struct Task
    {
        std::vector<const BatchUnit *> chunk; //!< empty => fallback
        std::size_t fallbackJob = 0;
    };
    std::vector<Task> tasks;
    std::size_t cap = static_cast<std::size_t>(batchLanes_);
    for (const auto &[key, g] : groups) {
        for (std::size_t off = 0; off < g.size(); off += cap) {
            Task t;
            std::size_t end = std::min(g.size(), off + cap);
            for (std::size_t u = off; u < end; ++u)
                t.chunk.push_back(&units[g[u]]);
            tasks.push_back(std::move(t));
        }
    }
    for (std::size_t j : fallbackJobs)
        tasks.push_back(Task{{}, j});

    // Progress fires when a job's last evaluation point lands, so
    // callers still see (jobs done, jobs total) exactly `total`
    // times, batched or not.
    std::mutex reportMutex;
    std::size_t jobsDone = 0;
    auto noteUnitsDone = [&](const Task &t) {
        if (!opts_.progress)
            return;
        std::lock_guard<std::mutex> lock(reportMutex);
        auto noteJob = [&](std::size_t job) {
            if (--remaining[job] == 0)
                opts_.progress(++jobsDone, total);
        };
        if (t.chunk.empty())
            noteJob(t.fallbackJob);
        else
            for (const BatchUnit *u : t.chunk)
                noteJob(u->job);
    };
    auto runTask = [&](const Task &t) {
        if (t.chunk.empty())
            results[t.fallbackJob] = runJob(plan.jobs[t.fallbackJob]);
        else if (t.chunk.size() == 1)
            // One lane amortizes nothing; take the plain path.
            results[t.chunk[0]->job].points[t.chunk[0]->point] = {
                t.chunk[0]->scenario,
                runScenario(t.chunk[0]->scenario)};
        else
            runBatchChunk(t.chunk, results);
        noteUnitsDone(t);
    };

    int workers =
        std::min<int>(threads_, static_cast<int>(tasks.size()));
    if (workers <= 1) {
        for (const Task &t : tasks)
            runTask(t);
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex errorMutex;
    std::exception_ptr firstError;
    auto worker = [&]() {
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t i = next.fetch_add(1);
            if (i >= tasks.size())
                return;
            try {
                runTask(tasks[i]);
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

std::vector<JobResult>
ExperimentRunner::run(const ExperimentPlan &plan) const
{
    std::vector<JobResult> results(plan.jobs.size());
    if (plan.jobs.empty())
        return results;

    if (batchLanes_ >= 2) {
        results = runBatched(plan);
        // Energy is evaluated after execution, from the already-
        // assembled results: a pure function of (scenario, sim), so
        // the metrics cannot differ between execution modes.
        applyEnergyMetrics(results);
        return results;
    }

    std::size_t total = plan.jobs.size();
    // Shard-aware planning: each sharded job claims simShards_
    // threads of its own, so the job-level pool shrinks to keep the
    // total at ~threads_.
    int workers = std::min<int>(
        std::max(1, threads_ / simShards_), static_cast<int>(total));

    if (workers <= 1) {
        for (std::size_t i = 0; i < total; ++i) {
            results[i] = runJob(plan.jobs[i]);
            if (opts_.progress)
                opts_.progress(i + 1, total);
        }
        applyEnergyMetrics(results);
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex reportMutex;
    std::exception_ptr firstError;

    auto worker = [&]() {
        // Stop dispatching new jobs once any job has failed (jobs
        // already in flight finish), mirroring the serial path's
        // abort-at-first-error semantics.
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t i = next.fetch_add(1);
            if (i >= total)
                return;
            try {
                results[i] = runJob(plan.jobs[i]);
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(reportMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
            std::size_t finished = done.fetch_add(1) + 1;
            if (opts_.progress) {
                std::lock_guard<std::mutex> lock(reportMutex);
                opts_.progress(finished, total);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);
    applyEnergyMetrics(results);
    return results;
}

} // namespace snoc
