/**
 * @file
 * Topology bake-off: the paper's core comparison as a user-facing
 * scenario. Pits Slim NoC against torus, concentrated mesh, FBF and
 * PFBF at equal node count under a chosen traffic pattern, reporting
 * latency (time-normalized across the different router cycle times),
 * saturation throughput, and the combined throughput/power metric.
 *
 * The five per-topology runs are described as an ExperimentPlan and
 * executed concurrently by the ExperimentRunner; results are
 * identical for any worker count (deterministic per-scenario seeds),
 * so `--threads 1` is the bitwise reference for a parallel run.
 *
 * Run: ./topology_bakeoff [RND|SHF|REV|ADV1] [load] [threads]
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hh"
#include "exp/runner.hh"
#include "power/power_model.hh"
#include "topo/topology_cache.hh"
#include "traffic/synthetic.hh"

using namespace snoc;

namespace {

PatternKind
parsePattern(const char *s)
{
    if (std::strcmp(s, "SHF") == 0)
        return PatternKind::Shuffle;
    if (std::strcmp(s, "REV") == 0)
        return PatternKind::BitReversal;
    if (std::strcmp(s, "ADV1") == 0)
        return PatternKind::Adversarial1;
    return PatternKind::Random;
}

} // namespace

int
main(int argc, char **argv)
{
    PatternKind kind =
        argc > 1 ? parsePattern(argv[1]) : PatternKind::Random;
    double load = argc > 2 ? std::atof(argv[2]) : 0.06;
    RunnerOptions opts;
    opts.threads = argc > 3 ? std::atoi(argv[3]) : 4;

    std::cout << "Topology bake-off, N in {192, 200}, pattern "
              << to_string(kind) << ", load " << load
              << " flits/node/cycle, SMART links (H = 9)\n\n";

    ExperimentPlan plan;
    plan.name = "topology_bakeoff";
    for (const char *id :
         {"t2d4", "cm4", "pfbf4", "fbf4", "sn_subgr_200"}) {
        SimConfig cfg;
        cfg.warmupCycles = 2000;
        cfg.measureCycles = 8000;
        plan.add(makeSyntheticScenario(id, "EB-Var", kind, load, 9,
                                       RoutingMode::Minimal, cfg));
    }

    ExperimentRunner runner(opts);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<JobResult> results = runner.run(plan);
    auto t1 = std::chrono::steady_clock::now();
    double seconds =
        std::chrono::duration<double>(t1 - t0).count();

    TextTable table({"network", "latency [ns]", "latency [SN cycles]",
                     "delivered", "thr/power [flits/J]"});
    TechParams tech = TechParams::nm45();
    for (const JobResult &job : results) {
        const Scenario &s = job.points.front().scenario;
        const SimResult &res = job.points.front().sim;
        const NocTopology &topo =
            TopologyCache::instance().get(s.topology);
        PowerModel power(topo, RouterConfig::named(s.routerConfig),
                         tech, s.link.hopsPerCycle);
        double latencyNs = res.avgPacketLatency * topo.cycleTimeNs();
        table.addRow(
            {topo.name(), TextTable::fmt(latencyNs, 1),
             TextTable::fmt(latencyNs / 0.5, 1),
             TextTable::fmt(res.throughput, 4),
             TextTable::fmt(
                 power.throughputPerPower(res.counters, res.cyclesRun),
                 1)});
    }
    table.print(std::cout);
    std::cout << "\n(latency normalized to the 0.5 ns SN cycle; each "
                 "topology simulates\nwith its own cycle time per "
                 "Section 5.1)\n";
    std::cout << "\ncampaign: " << plan.size() << " scenarios, "
              << runner.threadCount() << " worker thread(s), "
              << TextTable::fmt(seconds, 2) << " s wall clock\n";
    return 0;
}
