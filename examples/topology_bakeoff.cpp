/**
 * @file
 * Topology bake-off: the paper's core comparison as a user-facing
 * scenario. Pits Slim NoC against torus, concentrated mesh, FBF and
 * PFBF at equal node count under a chosen traffic pattern, reporting
 * latency (time-normalized across the different router cycle times),
 * saturation throughput, and the combined throughput/power metric.
 *
 * Run: ./topology_bakeoff [RND|SHF|REV|ADV1] [load]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hh"
#include "power/power_model.hh"
#include "topo/table4.hh"
#include "traffic/synthetic.hh"

using namespace snoc;

namespace {

PatternKind
parsePattern(const char *s)
{
    if (std::strcmp(s, "SHF") == 0)
        return PatternKind::Shuffle;
    if (std::strcmp(s, "REV") == 0)
        return PatternKind::BitReversal;
    if (std::strcmp(s, "ADV1") == 0)
        return PatternKind::Adversarial1;
    return PatternKind::Random;
}

} // namespace

int
main(int argc, char **argv)
{
    PatternKind kind =
        argc > 1 ? parsePattern(argv[1]) : PatternKind::Random;
    double load = argc > 2 ? std::atof(argv[2]) : 0.06;

    std::cout << "Topology bake-off, N in {192, 200}, pattern "
              << to_string(kind) << ", load " << load
              << " flits/node/cycle, SMART links (H = 9)\n\n";

    TextTable table({"network", "latency [ns]", "latency [SN cycles]",
                     "delivered", "thr/power [flits/J]"});
    TechParams tech = TechParams::nm45();
    for (const char *id :
         {"t2d4", "cm4", "pfbf4", "fbf4", "sn_subgr_200"}) {
        NocTopology topo = makeNamedTopology(id);
        RouterConfig rc = RouterConfig::named("EB-Var");
        LinkConfig lc;
        lc.hopsPerCycle = 9;
        Network net(topo, rc, lc);
        auto pattern = std::shared_ptr<TrafficPattern>(
            makeTrafficPattern(kind, topo));
        SyntheticConfig sc;
        sc.load = load;
        SimConfig cfg;
        cfg.warmupCycles = 2000;
        cfg.measureCycles = 8000;
        SimResult res = runSimulation(
            net, makeSyntheticSource(pattern, sc), cfg);

        PowerModel power(topo, rc, tech, lc.hopsPerCycle);
        double latencyNs = res.avgPacketLatency * topo.cycleTimeNs();
        table.addRow(
            {topo.name(), TextTable::fmt(latencyNs, 1),
             TextTable::fmt(latencyNs / 0.5, 1),
             TextTable::fmt(res.throughput, 4),
             TextTable::fmt(
                 power.throughputPerPower(res.counters, res.cyclesRun),
                 1)});
    }
    table.print(std::cout);
    std::cout << "\n(latency normalized to the 0.5 ns SN cycle; each "
                 "topology simulates\nwith its own cycle time per "
                 "Section 5.1)\n";
    return 0;
}
