/**
 * @file
 * Degraded operation: watch a Slim NoC lose links mid-flight and keep
 * delivering.
 *
 * Builds the named topology, arms a fault plan that kills a random
 * fraction of links one third into the run (and a router halfway
 * through), then prints the pre-fault vs post-fault delivery rates
 * and the full fault counter group.
 *
 * Run: ./degraded_operation [topo] [fraction] [load]
 *      (defaults: sn_54 0.15 0.10)
 */

#include <cstdlib>
#include <iostream>

#include "sim/simulation.hh"
#include "topo/table4.hh"
#include "traffic/synthetic.hh"

using namespace snoc;

int
main(int argc, char **argv)
{
    std::string topoId = argc > 1 ? argv[1] : "sn_54";
    double fraction = argc > 2 ? std::atof(argv[2]) : 0.15;
    double load = argc > 3 ? std::atof(argv[3]) : 0.10;

    const Cycle total = 6000;
    const Cycle failAt = total / 3;

    NocTopology topo = makeNamedTopology(topoId);
    FaultPlan plan =
        FaultPlan::randomLinkFailures(fraction, failAt, /*seed=*/5);
    plan.routerDown(topo.numRouters() / 2, total / 2);

    Network net(topo, RouterConfig::named("EB-Var"), LinkConfig{},
                RoutingMode::Minimal, /*seed=*/7, plan);
    auto pattern = std::shared_ptr<TrafficPattern>(
        makeTrafficPattern(PatternKind::Random, topo));
    SyntheticConfig traffic;
    traffic.load = load;
    TrafficSource source = makeSyntheticSource(pattern, traffic);

    std::cout << topo.name() << ": " << topo.routers().numEdges()
              << " links, " << topo.numRouters() << " routers; "
              << 100.0 * fraction << "% of links fail at cycle "
              << failAt << ", router " << topo.numRouters() / 2
              << " fails at cycle " << total / 2 << "\n\n";

    std::uint64_t lastDelivered = 0;
    for (Cycle c = 0; c < total; ++c) {
        source(net, net.now());
        net.step();
        if ((c + 1) % (total / 12) == 0) {
            std::uint64_t d = net.counters().packetsDelivered;
            std::cout << "cycle " << c + 1 << ": +"
                      << d - lastDelivered << " packets, "
                      << net.liveTopology().numEdges() << "/"
                      << topo.routers().numEdges()
                      << " links alive\n";
            lastDelivered = d;
        }
    }
    for (int c = 0;
         c < 30000 && net.flitsInFlight() + net.sourceQueueDepth() > 0;
         ++c)
        net.step();

    const SimCounters &c = net.counters();
    std::cout << "\nfinal accounting:\n"
              << "  packets injected   = " << c.packetsInjected << "\n"
              << "  packets delivered  = " << c.packetsDelivered << "\n"
              << "  fault events       = " << c.faultEvents << "\n"
              << "  flits dropped      = " << c.flitsDropped << "\n"
              << "  packets cut        = " << c.packetsDropped << "\n"
              << "  packets unroutable = " << c.packetsUnroutable << "\n"
              << "  packets refused    = " << c.packetsRefused << "\n"
              << "  packets rerouted   = " << c.packetsRerouted << "\n"
              << "  in flight at end   = " << net.flitsInFlight()
              << "\n";

    // Conservation sanity for the curious reader.
    bool balanced =
        c.flitsInjected == c.flitsDelivered + c.flitsDropped &&
        c.packetsInjected == c.packetsDelivered + c.packetsDropped +
                                 c.packetsUnroutable;
    std::cout << "  conservation       = "
              << (balanced ? "exact" : "VIOLATED") << "\n";
    return balanced ? 0 : 1;
}
