/**
 * @file
 * noc_cli: a small command-line front end over the library, the kind
 * of tool a downstream user reaches for first.
 *
 *   noc_cli info <topology>
 *   noc_cli export-dot <topology>
 *   noc_cli export-json <topology>
 *   noc_cli simulate <topology> <RND|SHF|REV|ADV1|ADV2|ASYM> <load>
 *           [--smart] [--router EB-Var|CBR-20|...]
 *           [--adaptive minimal|min-adaptive|ugal-l|ugal-g]
 *   noc_cli resilience <topology> <failureFraction>
 *   noc_cli trace <topology> <workload> <cycles> [--save FILE]
 *
 * <topology> accepts every Table 4 id (see `noc_cli list`). Pattern,
 * router-config and routing-mode names resolve through the same
 * registries as the `snoc` driver (`snoc list <axis>` enumerates
 * them). For plan-driven campaigns use `snoc run` instead.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/table.hh"
#include "core/placement_model.hh"
#include "graph/resilience.hh"
#include "power/power_model.hh"
#include "topo/export.hh"
#include "topo/table4.hh"
#include "trace/trace_file.hh"
#include "traffic/synthetic.hh"

using namespace snoc;

namespace {

int
usage()
{
    std::cerr
        << "usage: noc_cli <command> [args]\n"
           "  list\n"
           "  info <topology>\n"
           "  export-dot <topology>\n"
           "  export-json <topology>\n"
           "  simulate <topology> <pattern> <load> [--smart]\n"
           "           [--router CFG] [--adaptive MODE]\n"
           "  resilience <topology> <failureFraction>\n"
           "  trace <topology> <workload> <cycles> [--save FILE]\n";
    return 2;
}

int
cmdList()
{
    for (int cls : {200, 1296, 54}) {
        std::cout << "size class " << cls << ":";
        for (const auto &id : table4Ids(cls))
            std::cout << ' ' << id;
        std::cout << '\n';
    }
    return 0;
}

int
cmdInfo(const std::string &id)
{
    NocTopology topo = makeNamedTopology(id);
    PlacementModel pm(topo.routers(), topo.placement());
    std::cout << "topology        " << topo.name() << "\n"
              << "nodes           " << topo.numNodes() << "\n"
              << "routers         " << topo.numRouters() << "\n"
              << "concentration   " << topo.concentration() << "\n"
              << "network radix   " << topo.routers().maxDegree()
              << "\n"
              << "router radix    " << topo.routerRadix() << "\n"
              << "diameter        " << topo.diameter() << "\n"
              << "avg path length "
              << topo.routers().averagePathLength() << "\n"
              << "die             " << topo.placement().dimX() << " x "
              << topo.placement().dimY() << " tiles\n"
              << "avg wire length " << pm.averageWireLength()
              << " hops\n"
              << "bisection links " << topo.bisectionLinks() << "\n"
              << "cycle time      " << topo.cycleTimeNs() << " ns\n";
    PowerModel power(topo, RouterConfig::named("EB-Var"),
                     TechParams::nm45(), 9);
    std::cout << "area (45nm)     " << power.area().total()
              << " cm^2\n"
              << "static power    " << power.staticPower().total()
              << " W\n";
    return 0;
}

int
cmdSimulate(const std::vector<std::string> &args)
{
    if (args.size() < 3)
        return usage();
    std::string id = args[0];
    PatternKind pattern = patternFromName(args[1]);
    double load = std::stod(args[2]);
    int h = 1;
    std::string router = "EB-Var";
    RoutingMode mode = RoutingMode::Minimal;
    for (std::size_t i = 3; i < args.size(); ++i) {
        if (args[i] == "--smart") {
            h = 9;
        } else if (args[i] == "--router" && i + 1 < args.size()) {
            router = args[++i];
        } else if (args[i] == "--adaptive" && i + 1 < args.size()) {
            mode = routingModeFromName(args[++i]);
        } else {
            return usage();
        }
    }

    NocTopology topo = makeNamedTopology(id);
    LinkConfig lc;
    lc.hopsPerCycle = h;
    Network net(topo, RouterConfig::named(router), lc, mode);
    auto pat = std::shared_ptr<TrafficPattern>(
        makeTrafficPattern(pattern, topo));
    SyntheticConfig sc;
    sc.load = load;
    SimConfig cfg;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 8000;
    SimResult r =
        runSimulation(net, makeSyntheticSource(pat, sc), cfg);

    std::cout << "pattern            " << to_string(pattern) << "\n"
              << "offered load       " << r.offeredLoad
              << " flits/node/cycle\n"
              << "delivered          " << r.throughput << "\n"
              << "avg packet latency " << r.avgPacketLatency
              << " cycles (" << r.avgPacketLatency * topo.cycleTimeNs()
              << " ns)\n"
              << "avg hops           " << r.avgHops << "\n"
              << "stable             " << (r.stable ? "yes" : "NO")
              << "\n";
    std::cout << "\nhottest links (flits/cycle):\n";
    auto util = net.linkUtilization();
    for (std::size_t i = 0; i < std::min<std::size_t>(5, util.size());
         ++i) {
        std::cout << "  r" << util[i].routerA << " -> r"
                  << util[i].routerB << "  "
                  << util[i].flitsPerCycle << "\n";
    }
    return r.stable ? 0 : 1;
}

int
cmdResilience(const std::string &id, double fraction)
{
    NocTopology topo = makeNamedTopology(id);
    ResilienceReport r =
        analyzeResilience(topo.routers(), fraction, 25);
    std::cout << "failure fraction " << r.failureFraction << "\n"
              << "connected        " << 100.0 * r.connectedFraction
              << " %\n"
              << "avg diameter     " << r.avgDiameter << "\n"
              << "APL inflation    " << r.avgPathInflation << "\n"
              << "expansion probe  "
              << edgeExpansionProbe(topo.routers(), 50) << "\n";
    return 0;
}

int
cmdTrace(const std::vector<std::string> &args)
{
    if (args.size() < 3)
        return usage();
    NocTopology topo = makeNamedTopology(args[0]);
    const WorkloadProfile &w = workloadByName(args[1]);
    Cycle cycles = static_cast<Cycle>(std::stoll(args[2]));
    std::string savePath;
    for (std::size_t i = 3; i < args.size(); ++i) {
        if (args[i] == "--save" && i + 1 < args.size())
            savePath = args[++i];
    }
    auto events = generateTrace(w, topo, cycles);
    if (!savePath.empty()) {
        writeTraceFile(events, savePath);
        std::cout << "wrote " << events.size() << " events to "
                  << savePath << "\n";
    }
    Network net(topo, RouterConfig::named("EB-Var"));
    SimConfig cfg;
    cfg.warmupCycles = cycles / 10;
    cfg.measureCycles = cycles;
    cfg.drain = true;
    SimResult r =
        runSimulation(net, makeTraceSource(std::move(events)), cfg);
    std::cout << "workload           " << w.name << "\n"
              << "packets delivered  " << r.packetsDelivered << "\n"
              << "avg packet latency " << r.avgPacketLatency
              << " cycles\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    std::vector<std::string> args;
    for (int i = 2; i < argc; ++i)
        args.emplace_back(argv[i]);
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "info" && args.size() == 1)
            return cmdInfo(args[0]);
        if (cmd == "export-dot" && args.size() == 1) {
            writeDot(makeNamedTopology(args[0]), std::cout);
            return 0;
        }
        if (cmd == "export-json" && args.size() == 1) {
            writeJson(makeNamedTopology(args[0]), std::cout);
            return 0;
        }
        if (cmd == "simulate")
            return cmdSimulate(args);
        if (cmd == "resilience" && args.size() == 2)
            return cmdResilience(args[0], std::stod(args[1]));
        if (cmd == "trace")
            return cmdTrace(args);
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return usage();
}
