/**
 * @file
 * PARSEC/SPLASH campaign: replay the 14 trace workloads of
 * Section 5.1 on a chosen topology and report per-benchmark latency
 * and the energy-delay product, the Figure 18 methodology as a
 * user-facing tool. The 14 workloads are an ExperimentPlan: each is
 * an independent trace scenario, executed across worker threads.
 *
 * Run: ./parsec_campaign [topologyId] [cycles] [threads]
 *      e.g. ./parsec_campaign sn_subgr_200 6000 4
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "exp/runner.hh"
#include "power/power_model.hh"
#include "topo/topology_cache.hh"
#include "trace/trace.hh"

using namespace snoc;

int
main(int argc, char **argv)
{
    std::string id = argc > 1 ? argv[1] : "sn_subgr_200";
    Cycle cycles = argc > 2
                       ? static_cast<Cycle>(std::atoll(argv[2]))
                       : 6000;
    RunnerOptions opts;
    opts.threads = argc > 3 ? std::atoi(argv[3]) : 0;

    const NocTopology &topo = TopologyCache::instance().get(id);
    RouterConfig rc = RouterConfig::named("EB-Var");
    PowerModel power(topo, rc, TechParams::nm45());

    std::cout << "PARSEC/SPLASH campaign on " << topo.name() << " ("
              << topo.numNodes() << " nodes, " << cycles
              << " trace cycles/benchmark)\n\n";

    ExperimentPlan plan;
    plan.name = "parsec_campaign";
    for (const WorkloadProfile &w : parsecSplashWorkloads())
        plan.add(makeTraceScenario(id, w.name, cycles));
    std::vector<JobResult> results =
        ExperimentRunner(opts).run(plan);

    TextTable table({"benchmark", "packets", "latency [cycles]",
                     "hops", "EDP [pJ*s]"});
    for (const JobResult &job : results) {
        const Scenario &s = job.points.front().scenario;
        const SimResult &res = job.points.front().sim;
        double edp = power.energyDelay(res.counters, res.cyclesRun,
                                       res.avgPacketLatency);
        table.addRow({s.traffic.workload,
                      TextTable::fmt(res.packetsDelivered),
                      TextTable::fmt(res.avgPacketLatency, 1),
                      TextTable::fmt(res.avgHops, 2),
                      TextTable::fmt(edp * 1e12, 3)});
    }
    table.print(std::cout);
    return 0;
}
