/**
 * @file
 * PARSEC/SPLASH campaign: replay the 14 trace workloads of
 * Section 5.1 on a chosen topology and report per-benchmark latency
 * and the energy-delay product, the Figure 18 methodology as a
 * user-facing tool.
 *
 * Run: ./parsec_campaign [topologyId] [cycles]
 *      e.g. ./parsec_campaign sn_subgr_200 6000
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "power/power_model.hh"
#include "topo/table4.hh"
#include "trace/trace.hh"

using namespace snoc;

int
main(int argc, char **argv)
{
    std::string id = argc > 1 ? argv[1] : "sn_subgr_200";
    Cycle cycles = argc > 2
                       ? static_cast<Cycle>(std::atoll(argv[2]))
                       : 6000;

    NocTopology topo = makeNamedTopology(id);
    RouterConfig rc = RouterConfig::named("EB-Var");
    PowerModel power(topo, rc, TechParams::nm45());

    std::cout << "PARSEC/SPLASH campaign on " << topo.name() << " ("
              << topo.numNodes() << " nodes, " << cycles
              << " trace cycles/benchmark)\n\n";

    TextTable table({"benchmark", "packets", "latency [cycles]",
                     "hops", "EDP [pJ*s]"});
    for (const WorkloadProfile &w : parsecSplashWorkloads()) {
        Network net(topo, rc);
        SimResult res = runWorkload(net, w, cycles);
        double edp = power.energyDelay(res.counters, res.cyclesRun,
                                       res.avgPacketLatency);
        table.addRow({w.name,
                      TextTable::fmt(res.packetsDelivered),
                      TextTable::fmt(res.avgPacketLatency, 1),
                      TextTable::fmt(res.avgHops, 2),
                      TextTable::fmt(edp * 1e12, 3)});
    }
    table.print(std::cout);
    return 0;
}
