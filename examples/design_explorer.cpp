/**
 * @file
 * Design-space explorer: the workflow of Section 3.1 -- enumerate
 * the feasible Slim NoC configurations for a die (Table 2), then
 * compare the four layouts of Section 3.3 on wire length, buffer
 * cost, and wiring-constraint headroom, and recommend one. A final
 * stage cross-checks the static recommendation dynamically: a small
 * ExperimentPlan simulates all four layouts at N = 200 under random
 * traffic through the ExperimentRunner.
 *
 * Run: ./design_explorer [maxNodes]   (default 1300)
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "core/config_table.hh"
#include "core/slimnoc.hh"
#include "exp/runner.hh"
#include "power/tech_params.hh"

using namespace snoc;

int
main(int argc, char **argv)
{
    ConfigTableOptions opt;
    if (argc > 1)
        opt.maxNodes = std::atoi(argv[1]);

    // 1. Enumerate configurations (Table 2).
    std::cout << "Feasible Slim NoC configurations (N <= "
              << opt.maxNodes << "):\n\n";
    TextTable table({"q", "field", "k'", "p", "N", "Nr", "flags"});
    for (const SnConfig &cfg : enumerateConfigs(opt)) {
        std::string flags;
        if (cfg.powerOfTwoNodes)
            flags += "pow2 ";
        if (cfg.balancedGroups)
            flags += "balanced ";
        if (cfg.squareNodes)
            flags += "square";
        table.addRow({TextTable::fmt(cfg.params.q),
                      cfg.nonPrimeField ? "GF(p^k)" : "GF(p)",
                      TextTable::fmt(cfg.params.networkRadix()),
                      TextTable::fmt(cfg.params.p),
                      TextTable::fmt(cfg.params.numNodes()),
                      TextTable::fmt(cfg.params.numRouters()), flags});
    }
    table.print(std::cout);

    // 2. For the largest "nice" configuration, compare layouts.
    SnParams pick = SnParams::fromQ(9, 8); // SN-L unless overridden
    for (const SnConfig &cfg : enumerateConfigs(opt)) {
        if (cfg.balancedGroups &&
            cfg.params.numNodes() <= opt.maxNodes) {
            pick = cfg.params;
        }
    }
    std::cout << "\nLayout comparison for " << pick.describe()
              << ":\n\n";
    TextTable cmp({"layout", "avg wire M", "max wire", "buffers/router",
                   "max W", "W bound 45nm ok"});
    TechParams tech = TechParams::nm45();
    for (SnLayout layout : kAllSnLayouts) {
        SlimNoc sn(pick, layout);
        const PlacementModel &pm = sn.placementModel();
        double perRouter = sn.bufferModel().totalEdgeBuffers() /
                           sn.numRouters();
        // Eq. (3): per-direction routing tracks; a 128-bit link uses
        // 128 of the density x tile-side tracks.
        bool ok = pm.maxDirectionalWireCount() * 128 <=
                  tech.maxWiresOverTile();
        cmp.addRow({to_string(layout),
                    TextTable::fmt(pm.averageWireLength(), 2),
                    TextTable::fmt(pm.maxWireLength()),
                    TextTable::fmt(perRouter, 1),
                    TextTable::fmt(pm.maxDirectionalWireCount()),
                    ok ? "yes" : "NO"});
    }
    cmp.print(std::cout);

    // 3. Recommend the layout with the smallest average wire length.
    SnLayout best = SnLayout::Basic;
    double bestM = 1e18;
    for (SnLayout layout : kAllSnLayouts) {
        if (layout == SnLayout::Random)
            continue;
        SlimNoc sn(pick, layout);
        double m = sn.placementModel().averageWireLength();
        if (m < bestM) {
            bestM = m;
            best = layout;
        }
    }
    std::cout << "\nRecommended layout: " << to_string(best)
              << " (M = " << bestM << " hops)\n";

    // 4. Dynamic cross-check: simulate the four layouts at N = 200
    //    (the class every layout id instantiates) under RND traffic.
    std::cout << "\nSimulated cross-check (N = 200, RND, load 0.06, "
                 "no SMART):\n\n";
    ExperimentPlan plan;
    plan.name = "layout_shootout";
    for (const char *id : {"sn_basic_200", "sn_subgr_200",
                           "sn_gr_200", "sn_rand_200"}) {
        SimConfig cfg;
        cfg.warmupCycles = 1000;
        cfg.measureCycles = 4000;
        plan.add(makeSyntheticScenario(id, "EB-Var",
                                       PatternKind::Random, 0.06, 1,
                                       RoutingMode::Minimal, cfg));
    }
    std::vector<JobResult> shootout = ExperimentRunner().run(plan);
    TextTable sim({"layout", "latency [cycles]", "avg hops",
                   "delivered"});
    for (const JobResult &job : shootout) {
        const Scenario &s = job.points.front().scenario;
        const SimResult &r = job.points.front().sim;
        sim.addRow({s.topology,
                    TextTable::fmt(r.avgPacketLatency, 1),
                    TextTable::fmt(r.avgHops, 2),
                    TextTable::fmt(r.throughput, 4)});
    }
    sim.print(std::cout);
    return 0;
}
