/**
 * @file
 * Quickstart: build a Slim NoC, inspect its structure and layout
 * costs, then simulate uniform random traffic and print latency,
 * throughput, and power.
 *
 * Run: ./quickstart [N]    (default N = 200)
 */

#include <cstdlib>
#include <iostream>

#include "power/power_model.hh"
#include "sim/simulation.hh"
#include "topo/slimnoc_topology.hh"
#include "traffic/synthetic.hh"

using namespace snoc;

int
main(int argc, char **argv)
{
    int n = argc > 1 ? std::atoi(argv[1]) : 200;

    // 1. Pick a Slim NoC configuration for exactly N nodes
    //    (Section 3.5.3) and instantiate it with the subgroup layout.
    SnParams params = SnParams::fromNetworkSize(n);
    std::cout << "Configuration: " << params.describe() << "\n";

    SlimNoc sn(params, SnLayout::Subgroup);
    std::cout << "  diameter        = " << sn.routerGraph().diameter()
              << "\n"
              << "  avg path length = "
              << sn.routerGraph().averagePathLength() << " hops\n"
              << "  avg wire length = "
              << sn.placementModel().averageWireLength()
              << " tile hops (M of Eq. 4)\n"
              << "  total edge buffers = "
              << sn.bufferModel().totalEdgeBuffers() << " flits\n";

    // 2. Wrap it as a topology and simulate uniform random traffic at
    //    a moderate load with the paper's default router (2 VCs,
    //    RTT-sized edge buffers).
    NocTopology topo = makeSlimNocTopology(params, SnLayout::Subgroup);
    Network net(topo, RouterConfig::named("EB-Var"));
    auto pattern = std::shared_ptr<TrafficPattern>(
        makeTrafficPattern(PatternKind::Random, topo));
    SyntheticConfig traffic;
    traffic.load = 0.10; // flits/node/cycle
    SimConfig cfg;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 10000;
    SimResult res = runSimulation(
        net, makeSyntheticSource(pattern, traffic), cfg);

    std::cout << "\nUniform random @ " << traffic.load
              << " flits/node/cycle:\n"
              << "  avg packet latency = " << res.avgPacketLatency
              << " cycles (" << res.avgPacketLatency *
                     topo.cycleTimeNs()
              << " ns)\n"
              << "  delivered          = " << res.throughput
              << " flits/node/cycle\n"
              << "  avg router hops    = " << res.avgHops << "\n";

    // 3. Area and power at 45 nm.
    PowerModel power(topo, RouterConfig::named("EB-Var"),
                     TechParams::nm45());
    AreaReport area = power.area();
    std::cout << "\n45 nm estimates:\n"
              << "  network area       = " << area.total() << " cm^2 ("
              << area.total() / n << " per node)\n"
              << "  static power       = "
              << power.staticPower().total() << " W\n"
              << "  dynamic power      = "
              << power.dynamicPower(res.counters, res.cyclesRun).total()
              << " W at this load\n"
              << "  throughput/power   = "
              << power.throughputPerPower(res.counters, res.cyclesRun)
              << " flits/J\n";
    return 0;
}
